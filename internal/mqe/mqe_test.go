package mqe

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"fluxquery/internal/core"
	"fluxquery/internal/dtd"
	"fluxquery/internal/nf"
	"fluxquery/internal/runtime"
	"fluxquery/internal/xquery"
	"fluxquery/internal/xsax"
)

const weakBib = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const q3 = `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`
const qTitles = `<titles>{ for $b in $ROOT/bib/book return <t>{ $b/title }</t> }</titles>`

func plan(t *testing.T, src string, d *dtd.DTD) *runtime.Plan {
	t.Helper()
	n, err := nf.Normalize(xquery.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	q, err := core.Schedule(n, d)
	if err != nil {
		t.Fatal(err)
	}
	p, err := runtime.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bibDoc(books int) string {
	var b strings.Builder
	b.WriteString("<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&b, "<book><title>T%d</title><author>A%d</author></book>", i, i)
	}
	b.WriteString("</bib>")
	return b.String()
}

func TestSetMatchesSingleQueryRuns(t *testing.T) {
	d := dtd.MustParse(weakBib)
	doc := bibDoc(50)
	queries := []string{q3, qTitles, q3}

	s := NewSet(d)
	outs := make([]*bytes.Buffer, len(queries))
	subs := make([]*Sub, len(queries))
	for i, q := range queries {
		outs[i] = &bytes.Buffer{}
		sub, err := s.Register(plan(t, q, d), outs[i])
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	if err := s.Run(strings.NewReader(doc)); err != nil {
		t.Fatalf("shared run: %v", err)
	}
	for i, q := range queries {
		var want strings.Builder
		wantSt, err := plan(t, q, d).Run(strings.NewReader(doc), &want)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i].String() != want.String() {
			t.Errorf("query %d: shared output differs from single-query run\nshared: %q\nsingle: %q",
				i, outs[i].String(), want.String())
		}
		st, err := subs[i].Result()
		if err != nil {
			t.Errorf("query %d: result error: %v", i, err)
		}
		// Events and the Scan* counters legitimately differ: the shared
		// pass projects with the union of all riding plans' path-sets (a
		// plan may see events only a neighbour needs, and scan stats are
		// pass-level, reported via Set.LastScan). Everything the plan
		// computes from the events must match exactly.
		if st.PeakBufferBytes != wantSt.PeakBufferBytes ||
			st.BufferedBytesTotal != wantSt.BufferedBytesTotal ||
			st.BufferedNodes != wantSt.BufferedNodes ||
			st.OutputBytes != wantSt.OutputBytes ||
			st.HandlerFirings != wantSt.HandlerFirings {
			t.Errorf("query %d: stats differ: shared %+v single %+v", i, st, *wantSt)
		}
	}
	if sc, passes := s.LastScan(); passes != 1 || sc.EventsDelivered == 0 {
		t.Errorf("LastScan = %+v after %d passes, want 1 pass with deliveries", sc, passes)
	}
}

func TestSetRepeatedRuns(t *testing.T) {
	d := dtd.MustParse(weakBib)
	s := NewSet(d)
	var out bytes.Buffer
	if _, err := s.Register(plan(t, q3, d), &out); err != nil {
		t.Fatal(err)
	}
	first := ""
	for i := 0; i < 3; i++ {
		out.Reset()
		if err := s.Run(strings.NewReader(bibDoc(10))); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = out.String()
		} else if out.String() != first {
			t.Fatalf("run %d differs from run 0", i)
		}
	}
}

func TestRegisterRejectsForeignDTD(t *testing.T) {
	d := dtd.MustParse(weakBib)
	other := dtd.MustParse(`<!ELEMENT lib (item)*> <!ELEMENT item (#PCDATA)>`)
	s := NewSet(d)
	if _, err := s.Register(plan(t, `<r>{ for $i in $ROOT/lib/item return <i>{ $i }</i> }</r>`, other), io.Discard); err == nil {
		t.Fatal("plan under a different DTD registered without error")
	}
	// A structurally identical re-parse of the same DTD is accepted.
	if _, err := s.Register(plan(t, q3, dtd.MustParse(weakBib)), io.Discard); err != nil {
		t.Fatalf("equivalent DTD rejected: %v", err)
	}
}

// failAfter fails with io.ErrClosedPipe once n bytes have been written.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

func TestConsumerFailureIsIsolated(t *testing.T) {
	d := dtd.MustParse(weakBib)
	doc := bibDoc(2000) // enough output to overflow the writer buffer mid-stream
	s := NewSet(d)
	bad, err := s.Register(plan(t, q3, d), &failAfter{n: 64})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	good, err := s.Register(plan(t, q3, d), &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(strings.NewReader(doc)); err != nil {
		t.Fatalf("stream failed: %v", err)
	}
	if _, err := bad.Result(); err == nil {
		t.Error("failing writer not reported on its sub")
	}
	if _, err := good.Result(); err != nil {
		t.Errorf("healthy sub disturbed by failing neighbour: %v", err)
	}
	var want strings.Builder
	if _, err := plan(t, q3, d).Run(strings.NewReader(doc), &want); err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Error("healthy sub output corrupted by failing neighbour")
	}
}

func TestStreamErrorReachesEverySub(t *testing.T) {
	d := dtd.MustParse(weakBib)
	s := NewSet(d)
	subs := make([]*Sub, 3)
	for i := range subs {
		sub, err := s.Register(plan(t, q3, d), io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	err := s.Run(strings.NewReader(`<bib><book><title>T</title><broken`))
	if err == nil {
		t.Fatal("malformed stream not reported by Run")
	}
	for i, sub := range subs {
		if _, serr := sub.Result(); serr == nil {
			t.Errorf("sub %d: stream error not recorded", i)
		}
	}
}

func TestUnregisterDetachesMidStream(t *testing.T) {
	d := dtd.MustParse(weakBib)
	s := NewSet(d)
	var out bytes.Buffer
	sub, err := s.Register(plan(t, q3, d), &out)
	if err != nil {
		t.Fatal(err)
	}
	sub.Unregister()
	if s.Len() != 0 {
		t.Fatalf("Len after unregister = %d", s.Len())
	}
	// A snapshot taken before the unregister aborts at the first batch.
	sub2, err := s.Register(plan(t, q3, d), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		// Remove while the run drives; either the run sees the removal at
		// a batch boundary (ErrUnregistered) or completes first.
		sub2.Unregister()
	}()
	if err := s.Run(strings.NewReader(bibDoc(500))); err != nil {
		t.Fatal(err)
	}
	if _, rerr := sub2.Result(); rerr != nil && !errors.Is(rerr, ErrUnregistered) && !errors.Is(rerr, ErrNotRun) {
		t.Errorf("unexpected result error: %v", rerr)
	}
}

func TestRunWithZeroSubsValidates(t *testing.T) {
	d := dtd.MustParse(weakBib)
	s := NewSet(d)
	if err := s.Run(strings.NewReader(bibDoc(3))); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if err := s.Run(strings.NewReader(`<bib><pamphlet/></bib>`)); err == nil {
		t.Fatal("invalid doc accepted")
	}
}

func TestConcurrentRegisterUnregisterDuringRuns(t *testing.T) {
	d := dtd.MustParse(weakBib)
	doc := bibDoc(300)
	s := NewSet(d)
	p := plan(t, q3, d)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := s.Register(p, io.Discard)
				if err != nil {
					t.Error(err)
					return
				}
				sub.Unregister()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if err := s.Run(strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestDispatcherBatchOwnership(t *testing.T) {
	// A consumer that records everything it sees, copying eagerly, must
	// observe the exact validated event stream.
	d := dtd.MustParse(weakBib)
	doc := bibDoc(20)
	var got []string
	rec := &recorder{onEvent: func(ev *xsax.Event) {
		got = append(got, fmt.Sprintf("%v:%s:%s", ev.Kind, ev.Name, ev.Data))
	}}
	disp := &Dispatcher{DTD: d, BatchEvents: 7} // force many small batches
	if err := disp.Run(strings.NewReader(doc), []Consumer{rec}); err != nil {
		t.Fatal(err)
	}
	var want []string
	xr := xsax.NewReader(strings.NewReader(doc), d)
	for {
		ev, err := xr.NextEvent()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fmt.Sprintf("%v:%s:%s", ev.Kind, ev.Name, ev.Data))
	}
	if len(got) != len(want) {
		t.Fatalf("event count: got %d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %q want %q", i, got[i], want[i])
		}
	}
	if !rec.closed {
		t.Error("recorder not closed")
	}
}

// recorder is a minimal Consumer for dispatcher-level tests.
type recorder struct {
	onEvent func(*xsax.Event)
	pending []xsax.Event
	closed  bool
}

func (r *recorder) BeginFeed(evs []xsax.Event) { r.pending = evs }
func (r *recorder) EndFeed() (bool, error) {
	for i := range r.pending {
		r.onEvent(&r.pending[i])
	}
	r.pending = nil
	return false, nil
}
func (r *recorder) Close(cause error) { r.closed = true }

// TestConcurrentRunsAreSerialized: concurrent Run calls on one Set must
// not interleave on a subscription's writer (run under -race).
func TestConcurrentRunsAreSerialized(t *testing.T) {
	d := dtd.MustParse(weakBib)
	doc := bibDoc(200)
	s := NewSet(d)
	var out bytes.Buffer
	if _, err := s.Register(plan(t, q3, d), &out); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if _, err := plan(t, q3, d).Run(strings.NewReader(doc), &want); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := s.Run(strings.NewReader(doc)); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()
	// 20 serialized passes appended 20 intact copies of the result.
	if got := out.String(); got != strings.Repeat(want.String(), 20) {
		t.Errorf("interleaved or corrupted output across concurrent runs (%d bytes)", len(got))
	}
}
