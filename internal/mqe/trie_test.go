package mqe

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/runtime"
	"fluxquery/internal/shared"
)

func TestParseDispatchMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want DispatchMode
		ok   bool
	}{
		{"fanout", DispatchFanout, true},
		{"trie", DispatchTrie, true},
		{"", DispatchFanout, false},
		{"Trie", DispatchFanout, false},
	} {
		got, ok := ParseDispatchMode(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("ParseDispatchMode(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if DispatchTrie.String() != "trie" || DispatchFanout.String() != "fanout" {
		t.Errorf("mode spellings wrong: %q %q", DispatchTrie, DispatchFanout)
	}
}

// TestTrieDispatchMatchesFanout: trie-routed shared passes produce
// byte-identical per-plan output to fanout passes (and therefore to
// independent runs, which the fanout differential already pins),
// sequential and pipelined.
func TestTrieDispatchMatchesFanout(t *testing.T) {
	d := dtd.MustParse(weakBib)
	doc := bibDoc(300)
	queries := []string{q3, qTitles, q3, qTitles, q3}

	run := func(mode DispatchMode, parallel int) []string {
		s := NewSet(d)
		s.SetDispatch(mode)
		s.SetParallel(parallel)
		outs := make([]*bytes.Buffer, len(queries))
		for i, q := range queries {
			outs[i] = &bytes.Buffer{}
			if _, err := s.Register(plan(t, q, d), outs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(strings.NewReader(doc)); err != nil {
			t.Fatalf("mode=%v parallel=%d: %v", mode, parallel, err)
		}
		ds := s.LastDispatch()
		if ds.Mode != mode.String() || ds.Plans != len(queries) {
			t.Errorf("mode=%v parallel=%d: dispatch stats %+v", mode, parallel, ds)
		}
		if mode == DispatchTrie && (ds.TrieNodes == 0 || ds.Events == 0 || ds.Deliveries == 0 || ds.Flushes == 0) {
			t.Errorf("trie pass reported no routing work: %+v", ds)
		}
		res := make([]string, len(outs))
		for i, o := range outs {
			res[i] = o.String()
		}
		return res
	}

	want := run(DispatchFanout, 1)
	for _, parallel := range []int{1, 2, 4} {
		got := run(DispatchTrie, parallel)
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("parallel=%d plan %d: trie output differs\ntrie:   %.200s\nfanout: %.200s",
					parallel, i, got[i], want[i])
			}
		}
	}
}

// TestTrieInterningSharesNodes: many registrations of the same query
// must intern to the node count of a single registration, with fan-out
// lists carrying the multiplicity.
func TestTrieInterningSharesNodes(t *testing.T) {
	d := dtd.MustParse(weakBib)
	nodesFor := func(n int) (nodes, maxFan int) {
		s := NewSet(d)
		s.SetDispatch(DispatchTrie)
		for i := 0; i < n; i++ {
			if _, err := s.Register(plan(t, q3, d), io.Discard); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Run(strings.NewReader(bibDoc(1))); err != nil {
			t.Fatal(err)
		}
		ds := s.LastDispatch()
		return ds.TrieNodes, ds.MaxFanout
	}
	n1, _ := nodesFor(1)
	n64, f64 := nodesFor(64)
	if n64 != n1 {
		t.Errorf("64 identical plans interned to %d nodes, single plan %d", n64, n1)
	}
	if f64 != 64 {
		t.Errorf("max fanout = %d, want 64", f64)
	}
}

// freshTrie builds a trie directly from the surviving subscriptions,
// bypassing the Set's incremental invalidation — the oracle for the
// churn property below.
func freshTrie(d *dtd.DTD, plans []*runtime.Plan) *shared.Trie {
	names := d.IDNames()
	reqs := make([]shared.PlanReq, len(plans))
	for i, p := range plans {
		reqs[i] = shared.ReqFromPaths(p.Paths(), p.NeedShells(), names)
	}
	return shared.Build(reqs, len(names))
}

// TestTrieChurnSnapshotEqualsFresh: after any sequence of
// Register/Unregister operations (including unregisters issued while a
// run is in flight), the trie the next Run snapshots is identical —
// node for node, list for list — to a trie built fresh from the
// surviving plan set.
func TestTrieChurnSnapshotEqualsFresh(t *testing.T) {
	d := dtd.MustParse(weakBib)
	pool := []string{q3, qTitles}
	doc := bibDoc(200)
	r := rand.New(rand.NewSource(7))

	s := NewSet(d)
	s.SetDispatch(DispatchTrie)
	var live []*Sub
	var livePlans []*runtime.Plan

	snapshot := func() *shared.Trie {
		s.mu.Lock()
		s.recomputeTrieLocked()
		tr := s.trie
		s.mu.Unlock()
		return tr
	}

	for step := 0; step < 120; step++ {
		switch op := r.Intn(10); {
		case op < 5 || len(live) == 0: // register
			p := plan(t, pool[r.Intn(len(pool))], d)
			sub, err := s.Register(p, io.Discard)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, sub)
			livePlans = append(livePlans, p)
		case op < 8: // unregister
			i := r.Intn(len(live))
			live[i].Unregister()
			live = append(live[:i], live[i+1:]...)
			livePlans = append(livePlans[:i], livePlans[i+1:]...)
		default: // run with a mid-stream unregister
			var victim *Sub
			if len(live) > 1 && r.Intn(2) == 0 {
				i := r.Intn(len(live))
				victim = live[i]
				live = append(live[:i], live[i+1:]...)
				livePlans = append(livePlans[:i], livePlans[i+1:]...)
			}
			done := make(chan struct{})
			go func() {
				if victim != nil {
					victim.Unregister()
				}
				close(done)
			}()
			if err := s.Run(strings.NewReader(doc)); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			<-done
		}
		got := snapshot()
		want := freshTrie(d, livePlans)
		if g, w := got.DebugString(), want.DebugString(); g != w {
			t.Fatalf("step %d (%d live plans): snapshot trie != fresh build\nsnapshot:\n%s\nfresh:\n%s",
				step, len(live), g, w)
		}
		if err := got.Check(len(live)); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestTrieMidStreamUnregister: under trie dispatch a subscription
// unregistered mid-stream reports ErrUnregistered (even if the trie
// routes it no further events), and sibling plans are untouched.
func TestTrieMidStreamUnregister(t *testing.T) {
	d := dtd.MustParse(weakBib)
	doc := bibDoc(500)

	var want bytes.Buffer
	if _, err := plan(t, q3, d).Run(strings.NewReader(doc), &want); err != nil {
		t.Fatal(err)
	}

	s := NewSet(d)
	s.SetDispatch(DispatchTrie)
	var out bytes.Buffer
	keep, err := s.Register(plan(t, q3, d), &out)
	if err != nil {
		t.Fatal(err)
	}
	gone, err := s.Register(plan(t, qTitles, d), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	go gone.Unregister()
	if err := s.Run(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if _, rerr := gone.Result(); rerr != nil && !errors.Is(rerr, ErrUnregistered) && !errors.Is(rerr, ErrNotRun) {
		t.Errorf("unregistered sub error = %v", rerr)
	}
	if _, rerr := keep.Result(); rerr != nil {
		t.Errorf("sibling failed: %v", rerr)
	}
	if out.String() != want.String() {
		t.Errorf("sibling output diverged from independent run")
	}
	// After the churn, the next pass must again match a fresh build.
	var out2 bytes.Buffer
	out.Reset()
	sub3, err := s.Register(plan(t, qTitles, d), &out2)
	if err != nil {
		t.Fatal(err)
	}
	_ = sub3
	if err := s.Run(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Errorf("second pass output diverged")
	}
}

// TestTrieZeroAndErrorStreams: a trie-mode pass over zero plans is a
// pure validation pass, and stream errors reach every riding plan.
func TestTrieZeroAndErrorStreams(t *testing.T) {
	d := dtd.MustParse(weakBib)
	s := NewSet(d)
	s.SetDispatch(DispatchTrie)
	if err := s.Run(strings.NewReader(bibDoc(3))); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
	if err := s.Run(strings.NewReader(`<bib><pamphlet/></bib>`)); err == nil {
		t.Fatal("invalid doc accepted")
	}

	sub, err := s.Register(plan(t, q3, d), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(strings.NewReader(`<bib><book><title>x</title>`)); err == nil {
		t.Fatal("truncated doc accepted")
	}
	if _, rerr := sub.Result(); rerr == nil {
		t.Error("riding plan did not see the stream error")
	}
}

// TestTrieCostStampedOnRegister: registration computes a positive
// schema-statistics cost for every plan, and deeper-reaching plans cost
// at least as much as shallow ones.
func TestTrieCostStampedOnRegister(t *testing.T) {
	d := dtd.MustParse(weakBib)
	s := NewSet(d)
	sub, err := s.Register(plan(t, q3, d), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if sub.cost < 1 {
		t.Errorf("registration cost = %d, want >= 1", sub.cost)
	}
	rr := &subRun{sub: sub}
	if got := rr.FeedCost(); got != sub.cost {
		t.Errorf("FeedCost = %d, want stamped cost %d", got, sub.cost)
	}
}
