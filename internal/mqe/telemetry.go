package mqe

import (
	"context"
	"errors"

	"fluxquery/internal/shared"
	"fluxquery/internal/telemetry"
)

// setMetrics is a Set's resolved instrument bundle: every series the
// shared pass publishes, looked up in the registry once at SetTelemetry
// time so pass execution performs only atomic updates. A nil *setMetrics
// is the disabled state — the instruments inside are then never touched,
// and the instruments themselves are nil-safe besides, so no call site
// needs a second guard.
type setMetrics struct {
	reg *telemetry.Registry

	passes  *telemetry.Counter
	bytes   *telemetry.Counter
	events  *telemetry.Counter
	batches *telemetry.Counter
	steals  *telemetry.Counter

	passSeconds *telemetry.Histogram
	passBytes   *telemetry.Histogram

	stallTokenize *telemetry.Counter
	stallValidate *telemetry.Counter
	stallDispatch *telemetry.Counter
	stallGate     *telemetry.Counter

	ringToken *telemetry.Histogram
	ringEvent *telemetry.Histogram

	trieNodes      *telemetry.Gauge
	trieLists      *telemetry.Gauge
	trieMaxFanout  *telemetry.Gauge
	trieRebuilds   *telemetry.Counter
	trieEvents     *telemetry.Counter
	trieDeliveries *telemetry.Counter
	trieFlushes    *telemetry.Counter
}

func newSetMetrics(reg *telemetry.Registry) *setMetrics {
	if reg == nil {
		return nil
	}
	const stallHelp = "Cumulative time a pass stage spent blocked, by stage."
	const ringHelp = "Per-pass high-water ring occupancy, by ring (pipelined passes)."
	return &setMetrics{
		reg: reg,
		passes: reg.Counter("flux_scan_passes_total",
			"Completed shared scan passes."),
		bytes: reg.Counter("flux_scan_bytes_total",
			"Raw input bytes consumed by scan passes."),
		events: reg.Counter("flux_scan_events_total",
			"Validated events fanned out to riding plans."),
		batches: reg.Counter("flux_dispatch_batches_total",
			"Event batches dispatched to riding plans."),
		steals: reg.Counter("flux_pool_steals_total",
			"Plan feeds claimed by an evaluator worker outside its own stripe."),
		passSeconds: reg.Histogram("flux_pass_seconds",
			"Wall time of one shared scan pass.",
			telemetry.PassLatencyBuckets, telemetry.ScaleNanos),
		passBytes: reg.Histogram("flux_pass_input_bytes",
			"Raw input size of one shared scan pass.",
			telemetry.SizeBuckets, telemetry.ScaleNone),
		stallTokenize: reg.CounterScaled("flux_stage_stall_seconds_total", stallHelp,
			telemetry.ScaleNanos, telemetry.L("stage", "tokenize")),
		stallValidate: reg.CounterScaled("flux_stage_stall_seconds_total", stallHelp,
			telemetry.ScaleNanos, telemetry.L("stage", "validate")),
		stallDispatch: reg.CounterScaled("flux_stage_stall_seconds_total", stallHelp,
			telemetry.ScaleNanos, telemetry.L("stage", "dispatch")),
		stallGate: reg.CounterScaled("flux_stage_stall_seconds_total", stallHelp,
			telemetry.ScaleNanos, telemetry.L("stage", "gate")),
		ringToken: reg.Histogram("flux_ring_peak_occupancy", ringHelp,
			telemetry.OccupancyBuckets, telemetry.ScaleNone, telemetry.L("ring", "token")),
		ringEvent: reg.Histogram("flux_ring_peak_occupancy", ringHelp,
			telemetry.OccupancyBuckets, telemetry.ScaleNone, telemetry.L("ring", "event")),
		trieNodes: reg.Gauge("flux_trie_nodes",
			"Interned product nodes in the current dispatch trie."),
		trieLists: reg.Gauge("flux_trie_fanout_lists",
			"Interned fan-out lists in the current dispatch trie."),
		trieMaxFanout: reg.Gauge("flux_trie_max_fanout",
			"Length of the longest fan-out list in the current dispatch trie."),
		trieRebuilds: reg.Counter("flux_trie_rebuilds_total",
			"Dispatch trie rebuilds triggered by registration changes."),
		trieEvents: reg.Counter("flux_trie_events_total",
			"Events routed through the dispatch trie."),
		trieDeliveries: reg.Counter("flux_trie_deliveries_total",
			"Per-plan event deliveries made by trie-routed passes."),
		trieFlushes: reg.Counter("flux_trie_flushes_total",
			"Per-plan pending-batch flushes made by trie-routed passes."),
	}
}

// recordTrieBuild publishes a fresh trie snapshot's structural gauges.
// maxFanout is the effective per-subscription fan-out (class membership
// multiplied back into the widest interned list).
func (mt *setMetrics) recordTrieBuild(t *shared.Trie, maxFanout int) {
	mt.trieRebuilds.Inc()
	mt.trieNodes.Set(int64(t.NumNodes()))
	mt.trieLists.Set(int64(t.NumLists()))
	mt.trieMaxFanout.Set(int64(maxFanout))
}

// recordDispatch publishes one completed pass's routing totals (no-op
// for fanout-mode passes, whose DispatchStats carry no trie counters).
func (mt *setMetrics) recordDispatch(ds DispatchStats) {
	if ds.Events == 0 && ds.Deliveries == 0 && ds.Flushes == 0 {
		return
	}
	mt.trieEvents.Add(ds.Events)
	mt.trieDeliveries.Add(ds.Deliveries)
	mt.trieFlushes.Add(ds.Flushes)
}

// cancelled records a pass terminated by cancellation or deadline
// expiry under flux_pass_cancelled_total{reason}; other stream errors
// are not cancellations and stay uncounted here. Cold path: the series
// resolves through the registry per event.
func (mt *setMetrics) cancelled(err error) {
	if mt == nil {
		return
	}
	var reason string
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		reason = "deadline"
	case errors.Is(err, context.Canceled):
		reason = "canceled"
	default:
		return
	}
	mt.reg.Counter("flux_pass_cancelled_total",
		"Shared passes terminated by cancellation, by reason.",
		telemetry.L("reason", reason)).Inc()
}

// evalSeconds resolves the per-plan batch-eval latency series. Called
// once per plan per Run (registration-time cost), never on the feed path.
func (mt *setMetrics) evalSeconds(plan string) *telemetry.Histogram {
	if mt == nil {
		return nil
	}
	return mt.reg.Histogram("flux_eval_batch_seconds",
		"Per-plan evaluation time of one dispatched batch.",
		telemetry.LatencyBuckets, telemetry.ScaleNanos, telemetry.L("plan", plan))
}

// PassObs carries one pass's observability hooks through the dispatcher.
// The dispatcher accumulates stage timings into the spans and reports its
// delivery totals in the exported fields when the pass ends. A nil
// *PassObs disables all of it; the spans are nil-safe on top, so a
// partially populated PassObs (metrics without tracing) works unchanged.
//
// Span ownership: Scan and Dispatch are written by the goroutine driving
// the pass loop. In a pipelined pass, stage attribution (tokenize and
// validate stall, ring peaks) is stamped onto child spans only after the
// stage goroutines have joined.
type PassObs struct {
	// Scan accrues time spent pulling events from the stream (sequential:
	// the batch fill loop; pipelined: waiting on the validated-batch
	// ring, i.e. the dispatch stall). Dispatch accrues fan-out plus
	// slowest-consumer acknowledgement time.
	Scan, Dispatch *telemetry.Span

	// Batches and Events are the pass's delivery totals, filled by the
	// dispatcher when the pass ends.
	Batches, Events int64
}
