// Package mqe is the shared-stream multi-query engine: it tokenizes and
// validates an XML input stream exactly once and fans every event out to
// any number of registered compiled plans, so the N-queries-one-stream
// workload pays for one parse instead of N.
//
// The package has two layers. Dispatcher is the mechanism: one validated
// pass over a stream, delivered batch-by-batch to a set of Consumers with
// per-consumer error isolation — a failing consumer is detached, the
// stream and the other consumers continue. Set is the policy: a registry
// of (plan, output writer) subscriptions that can be registered and
// unregistered concurrently, each Run evaluating the current
// subscriptions over one document in a single shared pass.
//
// # Event-fanout ownership rules
//
// The dispatcher copies each scanner event once into an owned batch
// (xsax.Batch) and hands the same batch to every consumer, concurrently.
// Three rules keep that sound:
//
//  1. Batch memory belongs to the dispatcher. The events a consumer sees
//     in Feed — including every Data and attribute byte view — are valid
//     only until the consumer acknowledges the batch (EndFeed returns for
//     it). A consumer that retains data across batches must copy it; the
//     runtime evaluator copies exactly at its BDF buffer-fill points
//     (dom materialization, OwnedAttrs), which is the paper's own
//     stream/buffer boundary.
//  2. Batches are read-only. Many consumers read the same arena
//     concurrently; no consumer may mutate an event in place.
//  3. Interned data is exempt. Element names and *dtd.Element
//     declarations are interned in the DTD and safe to retain forever;
//     attribute names resolve through the scanner's symbol table, which
//     consumers may read while they hold the batch (the scanner is idle
//     until every consumer has acknowledged it).
//
// Zero-copy views therefore never cross a plan boundary un-copied: the
// dispatcher's single batch copy replaces the N per-plan scans, and each
// plan's own buffering discipline is unchanged from single-query
// execution — which is why Set output is byte-identical to running each
// plan with Plan.Run.
package mqe

import (
	"context"
	"io"
	"time"

	"fluxquery/internal/bufmgr"
	"fluxquery/internal/dtd"
	"fluxquery/internal/proj"
	"fluxquery/internal/shared"
	"fluxquery/internal/xsax"
)

// Consumer is one sink of the shared event stream. The dispatcher calls
// BeginFeed on every live consumer with the same owned batch, then
// EndFeed on each, so consumers process a batch concurrently while the
// dispatcher itself blocks. After EndFeed reports done (or after the
// dispatcher's pass ends) the consumer receives exactly one Close with
// the stream's terminal status: io.EOF for a clean end, the stream error
// otherwise.
type Consumer interface {
	// BeginFeed hands over a batch of owned events without waiting.
	BeginFeed(evs []xsax.Event)
	// EndFeed blocks until the batch from BeginFeed is consumed and
	// reports whether the consumer terminated (with its error).
	EndFeed() (done bool, err error)
	// Close delivers the stream's terminal status. It must be idempotent.
	Close(cause error)
}

// Dispatcher drives single validated passes over input streams. The zero
// value is not usable: a Dispatcher needs the stream's DTD.
type Dispatcher struct {
	// DTD validates the stream; every event carries names interned here.
	DTD *dtd.DTD
	// BatchEvents and BatchBytes bound a batch (defaults 256 events,
	// 32 KiB of payload).
	BatchEvents int
	BatchBytes  int
	// Proj, when non-nil, projects the shared pass: only events relevant
	// to the automaton (the union of every riding plan's path-set) are
	// delivered; pruned subtrees are fed as start/end shells. ProjMode
	// selects fast (bulk tokenizer skips) or validate (full validation,
	// filtered delivery) handling of pruned regions.
	Proj     *proj.Automaton
	ProjMode proj.Mode
	// Gate, when non-nil, is the pass's backpressure point: the
	// dispatcher waits on it before tokenizing each batch, so under
	// bufmgr.PolicyBackpressure the whole shared pass throttles while
	// the process is over budget and another pass can drain. The gate
	// covers the pass, not individual consumers — blocking one consumer
	// of a batch would deadlock against the siblings that could free
	// memory only when fed.
	Gate *bufmgr.Gate
	// Parallel, when >= 2, runs passes in pipelined form: tokenize,
	// validate and dispatch on separate goroutines connected by bounded
	// batch rings, with up to Parallel feed workers sharding the
	// consumer set (see parallel.go). 0 or 1 is the sequential pass.
	Parallel int
	// Trie, when non-nil, replaces whole-batch fanout with trie-routed
	// dispatch (see trie.go): each event resolves one trie node and is
	// delivered only to the plans whose fan-out list names them. The trie
	// must be built for exactly the consumers passed to the pass, in
	// order (consumers[i] is plan index i).
	Trie *shared.Trie
	// Members, when non-nil alongside Trie, maps each trie plan index (a
	// delivery class) to the consumer indices riding it: the trie was
	// built over deduplicated delivery classes and each routed event is
	// buffered once per class, fed to every member at flush. nil means
	// the trie's plan indices are consumer indices (one class each).
	Members [][]int32
	// Disp, when non-nil alongside Trie, receives the pass's routing
	// totals (events routed, per-plan deliveries, batch flushes).
	Disp *DispatchStats
	// Obs, when non-nil, receives the pass's stage timings and delivery
	// totals (see PassObs). The disabled path is one nil check per batch.
	Obs *PassObs
	// Ctx, when non-nil, cancels the pass: the driver checks it at every
	// batch boundary, the gate wait unparks on cancellation (bind the
	// gate to the same context), and a pipelined pass stops waiting on
	// its rings. Cancellation is the pass's terminal error — every
	// riding consumer receives it through Close, so partial output is
	// always flagged as errored, never silently truncated.
	Ctx context.Context
}

// ctxErr returns the dispatcher context's error, nil without a context.
func (d *Dispatcher) ctxErr() error {
	if d.Ctx == nil {
		return nil
	}
	return d.Ctx.Err()
}

// Default batch bounds; see runtime's feed batch sizing for rationale.
const (
	defaultBatchEvents = 256
	defaultBatchBytes  = 32 << 10
)

// Run tokenizes and validates r exactly once, fanning every event out to
// consumers. A consumer that terminates early is detached and the pass
// continues for the others; the stream is always scanned to its end (or
// first stream error), so a Run over zero consumers is a validation pass.
// Run returns the stream's error — nil on a well-formed, valid document —
// regardless of consumer failures, which are reported through each
// consumer's Close.
func (d *Dispatcher) Run(r io.Reader, consumers []Consumer) error {
	_, _, err := d.RunScanPass(r, consumers)
	return err
}

// RunScan is the sequential shared pass (Parallel is ignored), reporting
// the pass's projection scan statistics (all zeros when Proj is nil).
func (d *Dispatcher) RunScan(r io.Reader, consumers []Consumer) (xsax.ScanStats, error) {
	maxEvents := d.BatchEvents
	if maxEvents <= 0 {
		maxEvents = defaultBatchEvents
	}
	maxBytes := d.BatchBytes
	if maxBytes <= 0 {
		maxBytes = defaultBatchBytes
	}

	live := make([]Consumer, len(consumers))
	copy(live, consumers)

	xr := xsax.GetReader(r, d.DTD)
	if d.Proj != nil && d.ProjMode != proj.ModeOff {
		xr.SetProjection(d.Proj, d.ProjMode)
	}
	b := xsax.GetBatch()
	obs := d.Obs
	var scanTime, dispTime time.Duration
	var batches, events int64
	var cause error
	for cause == nil {
		if err := d.ctxErr(); err != nil {
			cause = err
			break
		}
		if err := d.Gate.Wait(); err != nil {
			cause = err
			break
		}
		b.Reset()
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		for b.Len() < maxEvents && b.ArenaBytes() < maxBytes {
			ev, err := xr.NextEvent()
			if err != nil {
				cause = err
				break
			}
			b.Append(ev)
		}
		var t1 time.Time
		if obs != nil {
			t1 = time.Now()
			scanTime += t1.Sub(t0)
		}
		if b.Len() == 0 {
			continue
		}
		// Start every consumer on the batch, then collect: the plans
		// evaluate concurrently, the batch arena is reused only after the
		// slowest EndFeed.
		for _, c := range live {
			c.BeginFeed(b.Events)
		}
		keep := live[:0]
		for _, c := range live {
			if done, _ := c.EndFeed(); done {
				c.Close(cause)
				continue
			}
			keep = append(keep, c)
		}
		live = keep
		if obs != nil {
			dispTime += time.Since(t1)
			batches++
			events += int64(b.Len())
		}
	}
	for _, c := range live {
		c.Close(cause)
	}
	if obs != nil {
		obs.Scan.AddTime(scanTime)
		obs.Dispatch.AddTime(dispTime)
		obs.Batches = batches
		obs.Events = events
	}
	sc := xr.ScanStats()
	xsax.PutBatch(b)
	xsax.PutReader(xr)
	if cause == io.EOF {
		return sc, nil
	}
	return sc, cause
}
