package mqe

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"fluxquery/internal/runtime"
)

// QueryStats is the cumulative cost ledger of one registered query name:
// what the query has cost the process across every shared pass it rode.
// Where runtime.Stats describes one pass, QueryStats attributes spend —
// evaluator CPU, delivered data, buffer residency, failures — to the
// query so a server can answer "which of my 10k registered queries is
// expensive" without retaining every pass.
type QueryStats struct {
	// Name is the registration name the entry aggregates over.
	Name string `json:"name"`
	// Passes counts shared passes the query rode; Errors counts the
	// subset that ended with a per-query error, and LastError carries
	// the most recent one ("" while error-free).
	Passes    int64  `json:"passes"`
	Errors    int64  `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	// EvalCPU is cumulative evaluator time attributed to the query:
	// the summed wall time of its batch evaluations (under a parallel
	// pass these overlap other queries' evaluations, so the sum across
	// queries can exceed pass wall time — it is CPU attribution, not
	// latency).
	EvalCPU time.Duration `json:"eval_cpu_ns"`
	// Events counts events the query consumed; OutputBytes the result
	// bytes it produced.
	Events      int64 `json:"events"`
	OutputBytes int64 `json:"output_bytes"`
	// PeakBufferBytes and PeakHeapBufferBytes are high-water marks
	// across all passes; SpilledBytes accumulates spill traffic.
	PeakBufferBytes     int64 `json:"peak_buffer_bytes"`
	PeakHeapBufferBytes int64 `json:"peak_heap_buffer_bytes"`
	SpilledBytes        int64 `json:"spilled_bytes"`
	// LastPassID is the most recent pass that included the query.
	LastPassID uint64 `json:"last_pass_id,omitempty"`
}

// Ledger accumulates per-query cost attribution across shared passes.
// A Ledger outlives any one Set: a server installs one process-wide
// Ledger on every per-request Set (SetLedger) so cost accrues across
// requests. All methods are safe for concurrent use and no-ops on a nil
// receiver.
type Ledger struct {
	mu      sync.Mutex
	entries map[string]*QueryStats
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: map[string]*QueryStats{}}
}

// record folds one query's pass outcome into its entry. Called once per
// (query, pass) when the subscription's run settles; st may be nil for
// a run that never started.
func (l *Ledger) record(name string, st *runtime.Stats, evalCPU time.Duration, err error) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e := l.entries[name]
	if e == nil {
		e = &QueryStats{Name: name}
		l.entries[name] = e
	}
	e.Passes++
	if err != nil {
		e.Errors++
		e.LastError = err.Error()
	}
	e.EvalCPU += evalCPU
	if st != nil {
		e.Events += st.Events
		e.OutputBytes += st.OutputBytes
		if st.PeakBufferBytes > e.PeakBufferBytes {
			e.PeakBufferBytes = st.PeakBufferBytes
		}
		if st.PeakHeapBufferBytes > e.PeakHeapBufferBytes {
			e.PeakHeapBufferBytes = st.PeakHeapBufferBytes
		}
		e.SpilledBytes += st.SpilledBytes
		e.LastPassID = st.PassID
	}
	l.mu.Unlock()
}

// Len returns the number of distinct query names in the ledger.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Get returns the entry for one query name.
func (l *Ledger) Get(name string) (QueryStats, bool) {
	if l == nil {
		return QueryStats{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[name]
	if !ok {
		return QueryStats{}, false
	}
	return *e, true
}

// Stats returns every entry, sorted by name.
func (l *Ledger) Stats() []QueryStats {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]QueryStats, 0, len(l.entries))
	for _, e := range l.entries {
		out = append(out, *e)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Axes accepted by TopK.
var ledgerAxes = []string{"cpu", "events", "bytes", "buffer", "errors", "passes"}

// Axes returns the axis names TopK accepts.
func Axes() []string { return append([]string(nil), ledgerAxes...) }

// axisValue extracts the ranking key for one axis.
func axisValue(e *QueryStats, axis string) (int64, bool) {
	switch axis {
	case "cpu":
		return int64(e.EvalCPU), true
	case "events":
		return e.Events, true
	case "bytes":
		return e.OutputBytes, true
	case "buffer":
		return e.PeakHeapBufferBytes, true
	case "errors":
		return e.Errors, true
	case "passes":
		return e.Passes, true
	}
	return 0, false
}

// TopK returns the k entries with the largest value on the given axis
// ("cpu", "events", "bytes", "buffer", "errors", "passes"), descending;
// ties break by name for determinism. k <= 0 returns every entry.
func (l *Ledger) TopK(axis string, k int) ([]QueryStats, error) {
	if _, ok := axisValue(&QueryStats{}, axis); !ok {
		return nil, fmt.Errorf("mqe: unknown ledger axis %q (want one of %v)", axis, ledgerAxes)
	}
	if l == nil {
		return nil, nil
	}
	all := l.Stats()
	sort.SliceStable(all, func(i, j int) bool {
		vi, _ := axisValue(&all[i], axis)
		vj, _ := axisValue(&all[j], axis)
		if vi != vj {
			return vi > vj
		}
		return all[i].Name < all[j].Name
	})
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	return all, nil
}

// Reset clears every entry (tests and administrative endpoints).
func (l *Ledger) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.entries = map[string]*QueryStats{}
	l.mu.Unlock()
}
