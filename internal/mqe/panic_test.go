package mqe

import (
	"strings"
	"testing"

	"fluxquery/internal/xsax"
)

// fakeConsumer counts feeds; panicOn makes BeginFeed panic on the n-th
// call (1-based), modelling a consumer whose feed hooks blow up inside
// an evaluator worker.
type fakeConsumer struct {
	feeds   int
	panicOn int
	closed  bool
	cause   error
}

func (f *fakeConsumer) BeginFeed(evs []xsax.Event) {
	f.feeds++
	if f.panicOn > 0 && f.feeds == f.panicOn {
		panic("synthetic feed panic")
	}
}
func (f *fakeConsumer) EndFeed() (bool, error) { return false, nil }
func (f *fakeConsumer) Close(cause error)      { f.closed = true; f.cause = cause }

// TestEvalPoolPanicIsolation: a panic escaping one consumer's feed
// hooks fails that task (and at most the other tasks the panicking
// worker had already claimed this batch — never the whole pool), the
// barrier still joins (no wedged pool), and the pool remains fully
// usable for the next batch.
func TestEvalPoolPanicIsolation(t *testing.T) {
	pool := newEvalPool(2)
	defer pool.close()
	evs := make([]xsax.Event, 1)

	bad := &fakeConsumer{panicOn: 1}
	goods := []*fakeConsumer{{}, {}, {}}
	tasks := []Consumer{bad, goods[0], goods[1], goods[2]}
	pool.feed(tasks, evs)

	var badRes feedResult
	poisoned := 0
	for i, c := range tasks {
		if c == Consumer(bad) {
			badRes = pool.res[i]
			continue
		}
		if pool.res[i].err != nil {
			// Collateral: the panicking worker had claimed this task too.
			// Allowed, but it must carry the panic error, not be silent.
			poisoned++
			if !strings.Contains(pool.res[i].err.Error(), "panic") {
				t.Errorf("task %d failed with non-panic error: %v", i, pool.res[i].err)
			}
		}
	}
	if !badRes.done || badRes.err == nil || !strings.Contains(badRes.err.Error(), "panic") {
		t.Fatalf("panicking task result = %+v, want done with panic error", badRes)
	}
	// The sibling worker's tasks survive: the panic never poisons the
	// whole batch.
	if poisoned >= len(goods) {
		t.Fatalf("panic poisoned all %d sibling tasks", poisoned)
	}

	// The pool survives: a follow-up batch over the healthy consumers
	// completes normally and every one of them is fed.
	before := []int{goods[0].feeds, goods[1].feeds, goods[2].feeds}
	pool.feed([]Consumer{goods[0], goods[1], goods[2]}, evs)
	for i := range 3 {
		if pool.res[i].done || pool.res[i].err != nil {
			t.Errorf("follow-up batch task %d: %+v", i, pool.res[i])
		}
		if goods[i].feeds != before[i]+1 {
			t.Errorf("consumer %d feeds = %d, want %d", i, goods[i].feeds, before[i]+1)
		}
	}
}

// TestEvalPoolPanicMidStripe: a worker that panics after claiming some
// tasks but before collecting acknowledgements fails exactly its
// claimed-but-uncollected tasks; tasks another worker claimed (or
// stole) are unaffected.
func TestEvalPoolPanicMidStripe(t *testing.T) {
	pool := newEvalPool(2)
	defer pool.close()
	evs := make([]xsax.Event, 1)

	// Eight tasks across two workers; one panics on its second claim, so
	// the worker dies owning at least one claimed task while its sibling
	// keeps running and steals the rest.
	consumers := make([]Consumer, 8)
	var bad *fakeConsumer
	for i := range consumers {
		f := &fakeConsumer{}
		if i == 4 {
			f.panicOn = 1
			bad = f
		}
		consumers[i] = f
	}
	pool.feed(consumers, evs)

	failed := 0
	for i, c := range consumers {
		res := pool.res[i]
		if c == Consumer(bad) {
			if !res.done || res.err == nil {
				t.Errorf("panicking task %d not failed: %+v", i, res)
			}
			continue
		}
		if res.err != nil {
			failed++
			if !strings.Contains(res.err.Error(), "panic") {
				t.Errorf("task %d failed with non-panic error: %v", i, res.err)
			}
		}
	}
	// Collateral damage is bounded to the panicking worker's claims of
	// this batch — strictly fewer than all the sibling's tasks.
	if failed >= len(consumers)-1 {
		t.Errorf("panic poisoned %d sibling tasks (whole batch)", failed)
	}
}
