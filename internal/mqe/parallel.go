package mqe

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fluxquery/internal/proj"
	"fluxquery/internal/xsax"
)

// This file implements the pipelined form of the shared pass. The
// tokenize and validate stages move onto their own goroutines (see
// xsax.Pipeline); this dispatcher becomes the third stage, pulling
// validated batches off the event ring and fanning each one out to the
// registered plans through a pool of feed workers.
//
// The workers shard the plan set: plans are ordered by descending cost
// estimate and dealt round-robin, so each worker owns a balanced stripe.
// Per batch, a worker claims the plans of its own stripe first (an
// atomic flag per plan keeps claims exclusive), then steals any plan a
// loaded sibling has not started yet, begins every claimed feed (the
// plan evaluators run concurrently on their own goroutines) and finally
// collects the acknowledgements. A counting barrier per batch keeps
// delivery in order for every plan — a plan never sees batch k+1 before
// it acknowledged batch k — and lets the batch arena recycle safely.

// PassStats reports a pipelined shared pass's execution metrics; all
// zeros for sequential passes.
type PassStats struct {
	// Parallel is the evaluator worker count the pass ran with.
	Parallel int
	// Batches counts validated batches fanned out.
	Batches int64
	// Steals counts plan feeds claimed by a worker outside its own
	// stripe.
	Steals int64
	// TokenizeStall, ValidateStall and DispatchStall are the per-stage
	// blocked times: the tokenizer waiting on a full token ring, the
	// validator waiting on a full event ring, and the dispatcher waiting
	// for a validated batch.
	TokenizeStall, ValidateStall, DispatchStall time.Duration
	// TokenRingPeak and EventRingPeak are high-water ring occupancies.
	TokenRingPeak, EventRingPeak int
}

// Costed is implemented by consumers whose relative per-batch feeding
// cost can be estimated; the evaluator pool uses it to balance its
// worker stripes. Consumers without it weigh 1.
type Costed interface{ FeedCost() int }

// RunScanPass is RunScan, additionally reporting pipeline metrics. With
// Parallel >= 2 the pass runs in pipelined form; otherwise it is the
// sequential single-goroutine pass and the PassStats are zero.
func (d *Dispatcher) RunScanPass(r io.Reader, consumers []Consumer) (xsax.ScanStats, PassStats, error) {
	if d.Trie != nil {
		return d.runTrie(r, consumers)
	}
	if d.Parallel >= 2 {
		return d.runPipelined(r, consumers)
	}
	sc, err := d.RunScan(r, consumers)
	return sc, PassStats{}, err
}

func (d *Dispatcher) runPipelined(r io.Reader, consumers []Consumer) (xsax.ScanStats, PassStats, error) {
	live := make([]Consumer, len(consumers))
	copy(live, consumers)
	// Cost-ordered so the round-robin deal below balances the stripes.
	sort.SliceStable(live, func(i, j int) bool { return feedCost(live[i]) > feedCost(live[j]) })

	var pa *proj.Automaton
	if d.Proj != nil && d.ProjMode != proj.ModeOff {
		pa = d.Proj
	}
	// Pipelined batches default to 4x the sequential size: every batch
	// pays two ring handoffs plus a feed-worker barrier (one wakeup per
	// worker), so larger batches amortize the coordination without
	// changing delivery semantics. Explicit Dispatcher sizes still win.
	be, bb := d.BatchEvents, d.BatchBytes
	if be <= 0 {
		be = 4 * defaultBatchEvents
	}
	if bb <= 0 {
		bb = 4 * defaultBatchBytes
	}
	pl := xsax.NewPipeline(r, d.DTD, xsax.PipelineConfig{
		BatchEvents: be,
		BatchBytes:  bb,
		Proj:        pa,
		ProjMode:    d.ProjMode,
		Throttle:    d.Gate.Wait,
		Ctx:         d.Ctx,
	})

	workers := d.Parallel
	if workers > len(live) {
		workers = len(live)
	}
	var pool *evalPool
	if workers >= 2 {
		pool = newEvalPool(workers)
	} else {
		workers = 1
	}

	obs := d.Obs
	var scanTime, dispTime time.Duration
	var cause error
	var batches, events int64
	for cause == nil {
		if err := d.ctxErr(); err != nil {
			cause = err
			break
		}
		var t0 time.Time
		if obs != nil {
			t0 = time.Now()
		}
		vb, err := pl.Next()
		var t1 time.Time
		if obs != nil {
			t1 = time.Now()
			scanTime += t1.Sub(t0)
		}
		if err != nil {
			cause = err
			break
		}
		if vb.Len() > 0 && len(live) > 0 {
			batches++
			events += int64(vb.Len())
			if pool != nil && len(live) > 1 {
				pool.feed(live, vb.Events)
				keep := live[:0]
				for i, c := range live {
					if pool.res[i].done {
						// A worker-side failure (panic isolation) reaches the
						// consumer here; an evaluator-side termination already
						// recorded its own error and ignores the cause.
						c.Close(pool.res[i].err)
						continue
					}
					keep = append(keep, c)
				}
				live = keep
			} else {
				for _, c := range live {
					c.BeginFeed(vb.Events)
				}
				keep := live[:0]
				for _, c := range live {
					if done, _ := c.EndFeed(); done {
						c.Close(nil)
						continue
					}
					keep = append(keep, c)
				}
				live = keep
			}
			if obs != nil {
				dispTime += time.Since(t1)
			}
		}
		pl.Recycle(vb)
	}
	// Close consumers (releasing their budget accounts) before joining
	// the pipeline: the tokenizer stage may be parked in a gate wait
	// that only drains when accounts release.
	for _, c := range live {
		c.Close(cause)
	}
	var steals int64
	if pool != nil {
		steals = pool.close()
	}
	sc, pps, _ := pl.Close()
	ps := PassStats{
		Parallel:      workers,
		Batches:       batches,
		Steals:        steals,
		TokenizeStall: pps.TokStall,
		ValidateStall: pps.ValStall,
		DispatchStall: pps.DispStall,
		TokenRingPeak: pps.TokRingPeak,
		EventRingPeak: pps.ValRingPeak,
	}
	if obs != nil {
		// In a pipelined pass the dispatcher's "scan" time is its wait on
		// the validated-batch ring — the stage goroutines overlap it, so
		// child spans here describe concurrent work, not a partition of
		// the wall clock (the sequential pass's spans do partition it).
		obs.Scan.AddTime(scanTime)
		obs.Scan.AddStall(pps.DispStall)
		obs.Dispatch.AddTime(dispTime)
		obs.Batches = batches
		obs.Events = events
	}
	if cause == io.EOF {
		return sc, ps, nil
	}
	return sc, ps, cause
}

func feedCost(c Consumer) int {
	if cc, ok := c.(Costed); ok {
		return cc.FeedCost()
	}
	return 1
}

// feedResult is one consumer's acknowledgement of one batch.
type feedResult struct {
	done bool
	err  error
}

// evalPool is a fixed set of feed workers fanning batches to consumers.
// Worker-owned state (mine) and claimed slots are exclusive per batch;
// the ready/done channel pair is the per-batch barrier that publishes
// tasks/evs/res between the dispatcher and the workers.
type evalPool struct {
	n     int
	ready []chan struct{}
	donec chan struct{}
	wg    sync.WaitGroup

	tasks []Consumer
	evs   []xsax.Event
	// evsEach, when non-nil, gives every task its own event slice
	// (trie-routed passes feed per-plan batches); otherwise all tasks
	// share evs.
	evsEach [][]xsax.Event
	claims  []int32
	res     []feedResult
	// coll marks tasks whose acknowledgement was collected this batch;
	// panic recovery uses it to fail only the claimed-but-uncollected
	// tasks of the panicking worker.
	coll   []bool
	mine   [][]int
	steals atomic.Int64
}

func newEvalPool(n int) *evalPool {
	p := &evalPool{n: n, donec: make(chan struct{}, n), mine: make([][]int, n)}
	for w := 0; w < n; w++ {
		ch := make(chan struct{}, 1)
		p.ready = append(p.ready, ch)
		p.wg.Add(1)
		go p.worker(w, ch)
	}
	return p
}

func (p *evalPool) worker(id int, ready chan struct{}) {
	defer p.wg.Done()
	for range ready {
		p.safeFeed(id)
		p.donec <- struct{}{}
	}
}

// safeFeed runs one batch's fan-out with panic isolation: a panic
// escaping a consumer's feed hooks terminates only the tasks this
// worker had claimed — each is marked done with the panic as its
// per-plan error, delivered through Close by the driver — while
// sibling workers, their tasks and the shared pass itself continue.
// (Plan evaluator panics never reach here: the StepExec goroutine
// converts them to per-plan errors itself.)
func (p *evalPool) safeFeed(id int) {
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("mqe: feed worker panic: %v", r)
			for _, i := range p.mine[id] {
				if !p.coll[i] {
					p.res[i] = feedResult{done: true, err: err}
				}
			}
		}
	}()
	p.feedWorker(id)
}

// feed fans one batch out to every task and waits for all workers to
// collect every acknowledgement; afterwards res holds one entry per
// task.
func (p *evalPool) feed(tasks []Consumer, evs []xsax.Event) {
	p.tasks, p.evs, p.evsEach = tasks, evs, nil
	p.run()
}

// feedEach is feed with a distinct event slice per task: evsEach[i]
// goes to tasks[i]. Trie-routed passes use it to flush several plans'
// pending batches through the worker pool at once.
func (p *evalPool) feedEach(tasks []Consumer, evsEach [][]xsax.Event) {
	p.tasks, p.evs, p.evsEach = tasks, nil, evsEach
	p.run()
}

func (p *evalPool) run() {
	tasks := p.tasks
	if cap(p.claims) < len(tasks) {
		p.claims = make([]int32, len(tasks))
		p.res = make([]feedResult, len(tasks))
		p.coll = make([]bool, len(tasks))
	}
	p.claims = p.claims[:len(tasks)]
	p.res = p.res[:len(tasks)]
	p.coll = p.coll[:len(tasks)]
	for i := range p.claims {
		p.claims[i] = 0
		p.res[i] = feedResult{}
		p.coll[i] = false
	}
	for _, ch := range p.ready {
		ch <- struct{}{}
	}
	for range p.ready {
		<-p.donec
	}
}

func (p *evalPool) feedWorker(id int) {
	n := len(p.tasks)
	mine := p.mine[id][:0]
	evsFor := func(i int) []xsax.Event {
		if p.evsEach != nil {
			return p.evsEach[i]
		}
		return p.evs
	}
	// Own stripe first (tasks are cost-ordered and dealt round-robin)…
	// p.mine[id] is kept current claim-by-claim so panic recovery knows
	// exactly which tasks this worker owns.
	for i := id; i < n; i += p.n {
		if atomic.CompareAndSwapInt32(&p.claims[i], 0, 1) {
			mine = append(mine, i)
			p.mine[id] = mine
			p.tasks[i].BeginFeed(evsFor(i))
		}
	}
	// …then steal whatever a loaded sibling has not started yet.
	for i := 0; i < n; i++ {
		if atomic.CompareAndSwapInt32(&p.claims[i], 0, 1) {
			p.steals.Add(1)
			mine = append(mine, i)
			p.mine[id] = mine
			p.tasks[i].BeginFeed(evsFor(i))
		}
	}
	p.mine[id] = mine
	for _, i := range mine {
		done, err := p.tasks[i].EndFeed()
		p.res[i] = feedResult{done: done, err: err}
		p.coll[i] = true
	}
}

// close joins the workers and returns the pass's steal count.
func (p *evalPool) close() int64 {
	for _, ch := range p.ready {
		close(ch)
	}
	p.wg.Wait()
	return p.steals.Load()
}
