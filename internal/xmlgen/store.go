package xmlgen

import (
	"fmt"
	"io"
	"math/rand"

	"fluxquery/internal/xmltok"
)

// StoreDTD describes a two-branch document (XMP use case Q5 style): a
// bibliography followed by a price list from a second source. Joins
// between the branches force any engine to buffer one side.
const StoreDTD = `<!ELEMENT store (bib,prices)>
<!ELEMENT bib (book)*>
<!ELEMENT book (title,price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT prices (entry)*>
<!ELEMENT entry (title,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

// StoreConfig configures the two-branch store generator.
type StoreConfig struct {
	// Books and Entries size the two branches.
	Books   int
	Entries int
	// Overlap is the fraction of entry titles that match some book title
	// (join selectivity), between 0 and 1.
	Overlap float64
	Seed    int64
}

func (c *StoreConfig) defaults() {
	if c.Books == 0 {
		c.Books = 100
	}
	if c.Entries == 0 {
		c.Entries = 100
	}
	if c.Overlap == 0 {
		c.Overlap = 0.3
	}
}

// WriteStore writes a store document valid for StoreDTD.
func WriteStore(w io.Writer, cfg StoreConfig) error {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	xw := xmltok.NewWriter(w)
	leaf := func(name, text string) {
		xw.StartElement(name, nil)
		xw.Text(text)
		xw.EndElement(name)
	}
	title := func(i int) string { return fmt.Sprintf("Book Title %d", i) }

	xw.StartElement("store", nil)
	xw.StartElement("bib", nil)
	for i := 0; i < cfg.Books; i++ {
		xw.StartElement("book", []xmltok.Attr{{Name: "year", Value: fmt.Sprintf("%d", 1985+r.Intn(20))}})
		leaf("title", title(i))
		leaf("price", fmt.Sprintf("%d.%02d", 10+r.Intn(90), r.Intn(100)))
		xw.EndElement("book")
	}
	xw.EndElement("bib")
	xw.StartElement("prices", nil)
	for i := 0; i < cfg.Entries; i++ {
		xw.StartElement("entry", nil)
		if r.Float64() < cfg.Overlap {
			leaf("title", title(r.Intn(cfg.Books)))
		} else {
			leaf("title", fmt.Sprintf("Other Title %d", i))
		}
		leaf("price", fmt.Sprintf("%d.%02d", 5+r.Intn(95), r.Intn(100)))
		xw.EndElement("entry")
	}
	xw.EndElement("prices")
	xw.EndElement("store")
	return xw.Flush()
}
