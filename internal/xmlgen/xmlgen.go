// Package xmlgen generates synthetic, schema-valid XML workloads for the
// experiments: the bibliography documents of the paper's running example
// (in the weak, strong and mixed-order DTD dialects), XMark-style auction
// documents, and random documents valid with respect to an arbitrary DTD
// (used by the property-based differential tests).
//
// All generators are deterministic for a given seed.
package xmlgen

import (
	"fmt"
	"io"
	"math/rand"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmltok"
)

// Bib dialects: the three DTDs discussed in the paper.
const (
	// WeakBibDTD is the paper's §2 DTD: titles and authors interleave.
	WeakBibDTD = `<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`
	// StrongBibDTD is the paper's Figure 1 DTD: strict order, so queries
	// can stream.
	StrongBibDTD = `<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
	// MixedBibDTD is the paper's §2 counterexample: interleaved prefix,
	// trailing price.
	MixedBibDTD = `<!ELEMENT bib (book)*>
<!ELEMENT book ((title|author)*,price)>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`
)

// BibDialect selects the content-model dialect for generated books.
type BibDialect int

// Bib dialects.
const (
	WeakBib BibDialect = iota
	StrongBib
	MixedBib
)

// DTD returns the DTD source of the dialect.
func (d BibDialect) DTD() string {
	switch d {
	case StrongBib:
		return StrongBibDTD
	case MixedBib:
		return MixedBibDTD
	default:
		return WeakBibDTD
	}
}

// BibConfig configures the bibliography generator.
type BibConfig struct {
	Dialect BibDialect
	// Books is the number of book elements.
	Books int
	// MaxAuthors bounds authors per book (at least one in the strong
	// dialect's author branch).
	MaxAuthors int
	// MaxTitles bounds titles per book in the weak dialect (strong and
	// mixed emit exactly one; weak emits 1..MaxTitles).
	MaxTitles int
	// TextWords sizes the text content of leaf elements.
	TextWords int
	Seed      int64
}

func (c *BibConfig) defaults() {
	if c.Books == 0 {
		c.Books = 100
	}
	if c.MaxAuthors == 0 {
		c.MaxAuthors = 3
	}
	if c.MaxTitles == 0 {
		c.MaxTitles = 2
	}
	if c.TextWords == 0 {
		c.TextWords = 4
	}
}

// WriteBib writes a bibliography document valid for the dialect's DTD.
func WriteBib(w io.Writer, cfg BibConfig) error {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	xw := xmltok.NewWriter(w)
	xw.StartElement("bib", nil)
	for i := 0; i < cfg.Books; i++ {
		writeBook(xw, r, &cfg, i)
	}
	xw.EndElement("bib")
	return xw.Flush()
}

func writeBook(w *xmltok.Writer, r *rand.Rand, cfg *BibConfig, i int) {
	year := fmt.Sprintf("%d", 1985+r.Intn(20))
	w.StartElement("book", []xmltok.Attr{{Name: "year", Value: year}})
	leaf := func(name, text string) {
		w.StartElement(name, nil)
		w.Text(text)
		w.EndElement(name)
	}
	titleText := func(j int) string {
		return fmt.Sprintf("Title %d.%d %s", i, j, words(r, cfg.TextWords))
	}
	authorText := func(j int) string {
		return fmt.Sprintf("Author %d.%d %s", i, j, words(r, 2))
	}
	switch cfg.Dialect {
	case StrongBib:
		leaf("title", titleText(0))
		if r.Intn(4) == 0 {
			n := 1 + r.Intn(cfg.MaxAuthors)
			for j := 0; j < n; j++ {
				leaf("editor", fmt.Sprintf("Editor %d.%d", i, j))
			}
		} else {
			n := 1 + r.Intn(cfg.MaxAuthors)
			for j := 0; j < n; j++ {
				leaf("author", authorText(j))
			}
		}
		leaf("publisher", publishers[r.Intn(len(publishers))])
		leaf("price", fmt.Sprintf("%d.%02d", 10+r.Intn(90), r.Intn(100)))
	case MixedBib:
		interleaveTitlesAuthors(w, r, cfg, titleText, authorText, leaf)
		leaf("price", fmt.Sprintf("%d.%02d", 10+r.Intn(90), r.Intn(100)))
	default: // WeakBib
		interleaveTitlesAuthors(w, r, cfg, titleText, authorText, leaf)
	}
	w.EndElement("book")
}

// interleaveTitlesAuthors emits titles and authors in random interleaved
// order — the workload that punishes engines unable to exploit order
// constraints.
func interleaveTitlesAuthors(w *xmltok.Writer, r *rand.Rand, cfg *BibConfig,
	titleText, authorText func(int) string, leaf func(name, text string)) {
	titles := 1 + r.Intn(cfg.MaxTitles)
	authors := r.Intn(cfg.MaxAuthors + 1)
	type item struct {
		name string
		text string
	}
	var items []item
	for j := 0; j < titles; j++ {
		items = append(items, item{"title", titleText(j)})
	}
	for j := 0; j < authors; j++ {
		items = append(items, item{"author", authorText(j)})
	}
	r.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
	for _, it := range items {
		leaf(it.name, it.text)
	}
}

var publishers = []string{
	"Addison-Wesley", "Morgan Kaufmann", "Springer", "O'Reilly", "MIT Press",
}

var wordList = []string{
	"data", "stream", "query", "schema", "buffer", "event", "memory",
	"process", "order", "constraint", "algebra", "engine", "automaton",
	"projection", "optimization", "evaluation",
}

func words(r *rand.Rand, n int) string {
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, wordList[r.Intn(len(wordList))]...)
	}
	return string(out)
}

// SizedBibBooks returns the book count that makes a WriteBib document
// approximately the given size in bytes (for document-size sweeps).
func SizedBibBooks(cfg BibConfig, targetBytes int64) int {
	cfg.defaults()
	// Measure a 64-book sample.
	sample := cfg
	sample.Books = 64
	var cw countingWriter
	if err := WriteBib(&cw, sample); err != nil {
		return 1
	}
	perBook := float64(cw.n) / 64
	n := int(float64(targetBytes) / perBook)
	if n < 1 {
		n = 1
	}
	return n
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// RandomConfig configures the random document generator.
type RandomConfig struct {
	Seed int64
	// MaxDepth bounds element nesting.
	MaxDepth int
	// MaxChildren bounds the children emitted per element before the
	// generator steers toward an accepting state.
	MaxChildren int
	// TextWords sizes the text of PCDATA elements.
	TextWords int
}

func (c *RandomConfig) defaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	if c.MaxChildren == 0 {
		c.MaxChildren = 8
	}
	if c.TextWords == 0 {
		c.TextWords = 3
	}
}

// WriteRandom writes a random document valid w.r.t. d. The walk chooses
// random content-model transitions, steering toward acceptance once the
// per-element child budget is exhausted.
func WriteRandom(w io.Writer, d *dtd.DTD, cfg RandomConfig) error {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	xw := xmltok.NewWriter(w)
	g := &randomGen{d: d, r: r, cfg: &cfg, w: xw}
	g.element(d.Root, 1)
	return xw.Flush()
}

type randomGen struct {
	d   *dtd.DTD
	r   *rand.Rand
	cfg *RandomConfig
	w   *xmltok.Writer
	// distCache memoizes distance-to-accept per element automaton.
	distCache map[*dtd.Automaton][]int
}

func (g *randomGen) element(name string, depth int) {
	e := g.d.Element(name)
	g.w.StartElement(name, g.attrs(e))
	if e.HasPCData() && !e.IsAny() {
		g.w.Text(words(g.r, g.cfg.TextWords))
	}
	if !e.IsAny() {
		g.children(e, depth)
	}
	g.w.EndElement(name)
}

func (g *randomGen) attrs(e *dtd.Element) []xmltok.Attr {
	var out []xmltok.Attr
	for _, def := range e.Atts {
		required := def.Default == dtd.AttRequired
		if !required && g.r.Intn(2) == 0 {
			continue
		}
		var v string
		switch {
		case def.Type == dtd.AttEnum:
			v = def.Enum[g.r.Intn(len(def.Enum))]
		case def.Default == dtd.AttFixed:
			v = def.Value
		default:
			v = fmt.Sprintf("v%d", g.r.Intn(1000))
		}
		out = append(out, xmltok.Attr{Name: def.Name, Value: v})
	}
	return out
}

func (g *randomGen) children(e *dtd.Element, depth int) {
	a := e.Automaton()
	dist := g.distances(a)
	q := a.Start()
	emitted := 0
	for {
		labels, next := a.Transitions(q)
		budgetLeft := emitted < g.cfg.MaxChildren && depth < g.cfg.MaxDepth
		if a.Accepting(q) {
			if len(labels) == 0 || !budgetLeft || g.r.Intn(3) == 0 {
				return
			}
		}
		if len(labels) == 0 {
			return // non-accepting dead end cannot occur in trim automata
		}
		var pick int
		if budgetLeft {
			pick = g.r.Intn(len(labels))
		} else {
			// Steer toward acceptance: choose a transition that reduces
			// the distance to an accepting state.
			pick = 0
			best := int(^uint(0) >> 1)
			for i, t := range next {
				if dist[t] < best {
					best = dist[t]
					pick = i
				}
			}
		}
		g.element(labels[pick], depth+1)
		q = next[pick]
		emitted++
	}
}

// distances computes each state's shortest distance (in transitions) to
// an accepting state.
func (g *randomGen) distances(a *dtd.Automaton) []int {
	if g.distCache == nil {
		g.distCache = map[*dtd.Automaton][]int{}
	}
	if d, ok := g.distCache[a]; ok {
		return d
	}
	n := a.NumStates()
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	for i := range dist {
		if a.Accepting(i) {
			dist[i] = 0
		} else {
			dist[i] = inf
		}
	}
	for changed := true; changed; {
		changed = false
		for q := 0; q < n; q++ {
			_, next := a.Transitions(q)
			for _, t := range next {
				if dist[t] != inf && dist[t]+1 < dist[q] {
					dist[q] = dist[t] + 1
					changed = true
				}
			}
		}
	}
	g.distCache[a] = dist
	return dist
}
