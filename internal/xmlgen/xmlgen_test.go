package xmlgen

import (
	"bytes"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xsax"
)

func TestBibValidAllDialects(t *testing.T) {
	for _, dialect := range []BibDialect{WeakBib, StrongBib, MixedBib} {
		d := dtd.MustParse(dialect.DTD())
		var buf bytes.Buffer
		if err := WriteBib(&buf, BibConfig{Dialect: dialect, Books: 50, Seed: 7}); err != nil {
			t.Fatalf("dialect %v: %v", dialect, err)
		}
		if err := xsax.Validate(bytes.NewReader(buf.Bytes()), d); err != nil {
			t.Errorf("dialect %v: generated document invalid: %v\n%s", dialect, err, firstN(buf.String(), 400))
		}
	}
}

func TestBibDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	cfg := BibConfig{Dialect: WeakBib, Books: 20, Seed: 42}
	if err := WriteBib(&a, cfg); err != nil {
		t.Fatal(err)
	}
	if err := WriteBib(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different documents")
	}
	var c bytes.Buffer
	cfg.Seed = 43
	if err := WriteBib(&c, cfg); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical documents")
	}
}

func TestBibInterleavingActuallyHappens(t *testing.T) {
	// The weak dialect must (across enough books) produce some book where
	// an author precedes a title — otherwise the buffering experiments
	// measure nothing.
	var buf bytes.Buffer
	if err := WriteBib(&buf, BibConfig{Dialect: WeakBib, Books: 200, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</author><title>") {
		t.Error("no author-before-title interleaving in 200 books")
	}
}

func TestSizedBibBooks(t *testing.T) {
	cfg := BibConfig{Dialect: WeakBib, Seed: 3}
	n := SizedBibBooks(cfg, 1<<20)
	cfg.Books = n
	var cw countingWriter
	if err := WriteBib(&cw, cfg); err != nil {
		t.Fatal(err)
	}
	if cw.n < 1<<19 || cw.n > 1<<21 {
		t.Errorf("target 1MiB, got %d bytes for %d books", cw.n, n)
	}
}

func TestAuctionValid(t *testing.T) {
	d := dtd.MustParse(AuctionDTD)
	var buf bytes.Buffer
	if err := WriteAuction(&buf, AuctionConfig{Factor: 0.5, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	if err := xsax.Validate(bytes.NewReader(buf.Bytes()), d); err != nil {
		t.Errorf("auction document invalid: %v\n%s", err, firstN(buf.String(), 400))
	}
	for _, want := range []string{"<people>", "<open_auction ", "<closed_auction>", "<item "} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("auction document missing %s", want)
		}
	}
}

func TestAuctionScales(t *testing.T) {
	var small, big bytes.Buffer
	if err := WriteAuction(&small, AuctionConfig{Factor: 0.2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := WriteAuction(&big, AuctionConfig{Factor: 2, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if big.Len() < 5*small.Len() {
		t.Errorf("factor 10x should grow bytes ~10x: %d vs %d", small.Len(), big.Len())
	}
}

func TestRandomValidManySchemas(t *testing.T) {
	schemas := []string{
		WeakBibDTD,
		StrongBibDTD,
		MixedBibDTD,
		AuctionDTD,
		`<!ELEMENT a (b?,(c|d)+,e*)><!ELEMENT b EMPTY><!ELEMENT c (a?)><!ELEMENT d (#PCDATA)><!ELEMENT e (d,d)>`,
		`<!ELEMENT m (#PCDATA|x|y)*><!ELEMENT x EMPTY><!ELEMENT y (m?)>`,
	}
	for si, src := range schemas {
		d := dtd.MustParse(src)
		for seed := int64(0); seed < 20; seed++ {
			var buf bytes.Buffer
			if err := WriteRandom(&buf, d, RandomConfig{Seed: seed, MaxDepth: 5, MaxChildren: 6}); err != nil {
				t.Fatalf("schema %d seed %d: %v", si, seed, err)
			}
			if err := xsax.Validate(bytes.NewReader(buf.Bytes()), d); err != nil {
				t.Errorf("schema %d seed %d: invalid: %v\n%s", si, seed, err, firstN(buf.String(), 300))
			}
		}
	}
}

func TestRandomRespectsRequiredSequences(t *testing.T) {
	// (d,d) inside e must always emit exactly two d's even when the
	// child budget is exhausted.
	d := dtd.MustParse(`<!ELEMENT r (e)*><!ELEMENT e (d,d)><!ELEMENT d (#PCDATA)>`)
	for seed := int64(0); seed < 10; seed++ {
		var buf bytes.Buffer
		if err := WriteRandom(&buf, d, RandomConfig{Seed: seed, MaxChildren: 1, MaxDepth: 3}); err != nil {
			t.Fatal(err)
		}
		if err := xsax.Validate(bytes.NewReader(buf.Bytes()), d); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestStoreValidAndOverlapping(t *testing.T) {
	d := dtd.MustParse(StoreDTD)
	var buf bytes.Buffer
	if err := WriteStore(&buf, StoreConfig{Books: 50, Entries: 50, Overlap: 0.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := xsax.Validate(bytes.NewReader(buf.Bytes()), d); err != nil {
		t.Fatalf("store document invalid: %v", err)
	}
	// Overlap: at least one entry title equals a book title.
	if !strings.Contains(buf.String(), "<entry><title>Book Title ") {
		t.Error("no overlapping titles generated")
	}
}

func TestInfoBibValidAndSized(t *testing.T) {
	d := dtd.MustParse(InfoBibDTD)
	var buf bytes.Buffer
	if err := WriteInfoBib(&buf, InfoBibConfig{Books: 40, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := xsax.Validate(bytes.NewReader(buf.Bytes()), d); err != nil {
		t.Fatalf("infobib invalid: %v", err)
	}
	cfg := InfoBibConfig{Seed: 4}
	n := SizedInfoBibBooks(cfg, 200_000)
	cfg.Books = n
	var cw countingWriter
	if err := WriteInfoBib(&cw, cfg); err != nil {
		t.Fatal(err)
	}
	if cw.n < 100_000 || cw.n > 400_000 {
		t.Errorf("sized generation off target: %d bytes for %d books", cw.n, n)
	}
}

func firstN(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
