package xmlgen

import (
	"fmt"
	"io"
	"math/rand"

	"fluxquery/internal/xmltok"
)

// AuctionDTD is a compact XMark-style auction-site schema: people,
// open auctions with bid histories, closed auctions and items. The
// element order within each record is strict (like the original XMark
// schema), so FluX can stream most queries over it; the bidder history
// inside open auctions is unbounded, which exercises per-record buffers.
const AuctionDTD = `<!ELEMENT site (people,open_auctions,closed_auctions,items)>
<!ELEMENT people (person)*>
<!ELEMENT person (name,emailaddress,phone?,city?)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT phone (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT open_auctions (open_auction)*>
<!ELEMENT open_auction (initial,(bidder)*,current,itemref,seller)>
<!ATTLIST open_auction id CDATA #REQUIRED>
<!ELEMENT initial (#PCDATA)>
<!ELEMENT bidder (date,increase)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT increase (#PCDATA)>
<!ELEMENT current (#PCDATA)>
<!ELEMENT itemref (#PCDATA)>
<!ELEMENT seller (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (seller,buyer,itemref,price,date)>
<!ELEMENT buyer (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT items (item)*>
<!ELEMENT item (location,name,description,quantity)>
<!ATTLIST item id CDATA #REQUIRED>
<!ELEMENT location (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
`

// AuctionConfig scales the auction document. Factor 1 produces roughly
// 100 persons, 100 open auctions, 50 closed auctions and 100 items
// (≈40 KB); sizes scale linearly.
type AuctionConfig struct {
	Factor float64
	// MaxBidders bounds the bid history per open auction.
	MaxBidders int
	Seed       int64
}

func (c *AuctionConfig) defaults() {
	if c.Factor == 0 {
		c.Factor = 1
	}
	if c.MaxBidders == 0 {
		c.MaxBidders = 5
	}
}

// WriteAuction writes an auction-site document valid for AuctionDTD.
func WriteAuction(w io.Writer, cfg AuctionConfig) error {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	persons := scaled(100, cfg.Factor)
	opens := scaled(100, cfg.Factor)
	closed := scaled(50, cfg.Factor)
	items := scaled(100, cfg.Factor)

	xw := xmltok.NewWriter(w)
	leaf := func(name, text string) {
		xw.StartElement(name, nil)
		xw.Text(text)
		xw.EndElement(name)
	}
	xw.StartElement("site", nil)

	xw.StartElement("people", nil)
	for i := 0; i < persons; i++ {
		xw.StartElement("person", []xmltok.Attr{{Name: "id", Value: fmt.Sprintf("person%d", i)}})
		leaf("name", personName(r, i))
		leaf("emailaddress", fmt.Sprintf("mailto:p%d@example.org", i))
		if r.Intn(2) == 0 {
			leaf("phone", fmt.Sprintf("+43 %07d", r.Intn(10000000)))
		}
		if r.Intn(3) == 0 {
			leaf("city", cities[r.Intn(len(cities))])
		}
		xw.EndElement("person")
	}
	xw.EndElement("people")

	xw.StartElement("open_auctions", nil)
	for i := 0; i < opens; i++ {
		xw.StartElement("open_auction", []xmltok.Attr{{Name: "id", Value: fmt.Sprintf("open%d", i)}})
		initial := 1 + r.Intn(200)
		leaf("initial", fmt.Sprintf("%d.00", initial))
		bidders := r.Intn(cfg.MaxBidders + 1)
		cur := float64(initial)
		for b := 0; b < bidders; b++ {
			xw.StartElement("bidder", nil)
			leaf("date", fmt.Sprintf("%02d/%02d/2004", 1+r.Intn(12), 1+r.Intn(28)))
			inc := 1 + r.Intn(20)
			cur += float64(inc)
			leaf("increase", fmt.Sprintf("%d.00", inc))
			xw.EndElement("bidder")
		}
		leaf("current", fmt.Sprintf("%.2f", cur))
		leaf("itemref", fmt.Sprintf("item%d", r.Intn(items)))
		leaf("seller", fmt.Sprintf("person%d", r.Intn(persons)))
		xw.EndElement("open_auction")
	}
	xw.EndElement("open_auctions")

	xw.StartElement("closed_auctions", nil)
	for i := 0; i < closed; i++ {
		xw.StartElement("closed_auction", nil)
		leaf("seller", fmt.Sprintf("person%d", r.Intn(persons)))
		leaf("buyer", fmt.Sprintf("person%d", r.Intn(persons)))
		leaf("itemref", fmt.Sprintf("item%d", r.Intn(items)))
		leaf("price", fmt.Sprintf("%d.%02d", 1+r.Intn(500), r.Intn(100)))
		leaf("date", fmt.Sprintf("%02d/%02d/2004", 1+r.Intn(12), 1+r.Intn(28)))
		xw.EndElement("closed_auction")
	}
	xw.EndElement("closed_auctions")

	xw.StartElement("items", nil)
	for i := 0; i < items; i++ {
		xw.StartElement("item", []xmltok.Attr{{Name: "id", Value: fmt.Sprintf("item%d", i)}})
		leaf("location", locations[r.Intn(len(locations))])
		leaf("name", fmt.Sprintf("Item %d %s", i, words(r, 2)))
		leaf("description", words(r, 12))
		leaf("quantity", fmt.Sprintf("%d", 1+r.Intn(10)))
		xw.EndElement("item")
	}
	xw.EndElement("items")

	xw.EndElement("site")
	return xw.Flush()
}

func scaled(base int, factor float64) int {
	n := int(float64(base) * factor)
	if n < 1 {
		n = 1
	}
	return n
}

func personName(r *rand.Rand, i int) string {
	return fmt.Sprintf("%s %s", firstNames[r.Intn(len(firstNames))], lastNames[i%len(lastNames)])
}

var firstNames = []string{"Ada", "Alan", "Edsger", "Grace", "Kurt", "Donald", "Barbara", "John"}
var lastNames = []string{"Lovelace", "Turing", "Dijkstra", "Hopper", "Goedel", "Knuth", "Liskov", "McCarthy"}
var cities = []string{"Vienna", "Berlin", "Munich", "Toronto", "Cairo"}
var locations = []string{"Austria", "Germany", "Canada", "Egypt", "Japan"}
