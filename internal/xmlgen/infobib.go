package xmlgen

import (
	"fmt"
	"io"
	"math/rand"

	"fluxquery/internal/xmltok"
)

// InfoBibDTD is the buffer-projection workload schema: books carry an
// info record whose blurb is large; queries typically read only the isbn.
// Because info and title interleave, the info records must be buffered —
// and the BDF's projection decides whether the blurb bytes enter the
// buffer or not.
const InfoBibDTD = `<!ELEMENT bib (book)*>
<!ELEMENT book (info|title)*>
<!ELEMENT info (isbn,blurb)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT blurb (#PCDATA)>
<!ELEMENT title (#PCDATA)>
`

// InfoBibConfig configures the info-bib generator.
type InfoBibConfig struct {
	Books int
	// BlurbWords sizes the blurb text (the payload projection drops).
	BlurbWords int
	Seed       int64
}

func (c *InfoBibConfig) defaults() {
	if c.Books == 0 {
		c.Books = 100
	}
	if c.BlurbWords == 0 {
		c.BlurbWords = 60
	}
}

// WriteInfoBib writes a document valid for InfoBibDTD. Each book holds
// one large info record and one or two titles, interleaved.
func WriteInfoBib(w io.Writer, cfg InfoBibConfig) error {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	xw := xmltok.NewWriter(w)
	leaf := func(name, text string) {
		xw.StartElement(name, nil)
		xw.Text(text)
		xw.EndElement(name)
	}
	xw.StartElement("bib", nil)
	for i := 0; i < cfg.Books; i++ {
		xw.StartElement("book", nil)
		writeInfo := func() {
			xw.StartElement("info", nil)
			leaf("isbn", fmt.Sprintf("978-%09d", i))
			leaf("blurb", words(r, cfg.BlurbWords))
			xw.EndElement("info")
		}
		writeTitle := func(j int) { leaf("title", fmt.Sprintf("Title %d.%d", i, j)) }
		// Interleave: sometimes info first, sometimes between titles.
		switch r.Intn(3) {
		case 0:
			writeInfo()
			writeTitle(0)
		case 1:
			writeTitle(0)
			writeInfo()
			writeTitle(1)
		default:
			writeTitle(0)
			writeInfo()
		}
		xw.EndElement("book")
	}
	xw.EndElement("bib")
	return xw.Flush()
}

// SizedInfoBibBooks returns the book count for a target byte size.
func SizedInfoBibBooks(cfg InfoBibConfig, targetBytes int64) int {
	cfg.defaults()
	sample := cfg
	sample.Books = 32
	var cw countingWriter
	if err := WriteInfoBib(&cw, sample); err != nil {
		return 1
	}
	n := int(float64(targetBytes) / (float64(cw.n) / 32))
	if n < 1 {
		n = 1
	}
	return n
}
