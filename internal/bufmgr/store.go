package bufmgr

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fluxquery/internal/faultinj"
)

// seg is one allocated extent of the spill file.
type seg struct {
	off int64
	len int64
}

// segStore is an append-mostly extent allocator over a single unlinked
// temp file. Freed extents go to a free list and are coalesced and
// reused, so a long-running server's spill file grows to the working-set
// high-water, not without bound. Reads use ReadAt and can run
// concurrently; allocation and free are serialized by the mutex.
type segStore struct {
	mu   sync.Mutex
	f    *os.File
	dir  string // per-process spill dir, removed (if empty) on close
	size int64
	live int64
	// retries counts transparently retried I/O operations.
	retries atomic.Int64
	// free holds reusable extents sorted by offset (adjacent extents
	// are merged on free).
	freeList []seg
}

// spillDirPrefix names per-process spill directories: the suffix is the
// owning pid, which the start-up sweep uses to find orphans.
const spillDirPrefix = "fluxspill-"

// Spill I/O retry shape: a failed write/read is retried up to
// spillRetryMax-1 times with exponential backoff, absorbing transient
// disk errors (the fault-injection tests arm exactly-once faults to pin
// this recovery).
const (
	spillRetryMax     = 3
	spillRetryBackoff = 200 * time.Microsecond
)

// openSegStore creates the store's backing file under a per-process
// directory in dir and unlinks it immediately: the extents live only as
// long as the process (or until close), and a crash leaks nothing but
// the empty directory — which the next Manager start sweeps (New →
// sweepStaleSpillDirs).
func openSegStore(dir string) (*segStore, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	procDir := filepath.Join(dir, spillDirPrefix+strconv.Itoa(os.Getpid()))
	if err := os.MkdirAll(procDir, 0o700); err != nil {
		return nil, fmt.Errorf("bufmgr: spill store: %w", err)
	}
	f, err := os.CreateTemp(procDir, "seg-*")
	if err != nil {
		return nil, fmt.Errorf("bufmgr: spill store: %w", err)
	}
	// Unlink while keeping the descriptor: the file vanishes from the
	// namespace now and its blocks are reclaimed when the fd closes.
	// ENOENT is tolerated — a concurrent sweep by a sibling manager can
	// have removed the freshly created file already.
	if err := os.Remove(f.Name()); err != nil && !errors.Is(err, os.ErrNotExist) {
		f.Close()
		return nil, fmt.Errorf("bufmgr: spill store: %w", err)
	}
	return &segStore{f: f, dir: procDir}, nil
}

// sweepStaleSpillDirs removes per-process spill directories left behind
// by dead processes. Directories belonging to live pids (including this
// one) are never touched.
func sweepStaleSpillDirs(dir string) {
	if dir == "" {
		dir = os.TempDir()
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), spillDirPrefix) {
			continue
		}
		pid, err := strconv.Atoi(strings.TrimPrefix(e.Name(), spillDirPrefix))
		if err != nil || pid == os.Getpid() || pidAlive(pid) {
			continue
		}
		os.RemoveAll(filepath.Join(dir, e.Name()))
	}
}

// pidAlive reports whether a process with the given pid exists (signal
// 0 probe; EPERM means it exists but belongs to someone else).
func pidAlive(pid int) bool {
	if pid <= 0 {
		return false
	}
	p, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	err = p.Signal(syscall.Signal(0))
	return err == nil || errors.Is(err, syscall.EPERM)
}

// retryIO runs op, retrying transient failures with exponential backoff
// up to spillRetryMax attempts, and returns the last error.
func (s *segStore) retryIO(op func() error) error {
	backoff := spillRetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil || attempt == spillRetryMax-1 {
			return err
		}
		s.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 4
	}
}

// retryCount returns the cumulative number of retried I/O operations.
func (s *segStore) retryCount() int64 { return s.retries.Load() }

// put writes data into a reused or fresh extent.
func (s *segStore) put(data []byte) (seg, error) {
	need := int64(len(data))
	s.mu.Lock()
	sg := s.alloc(need)
	s.live++
	s.mu.Unlock()
	err := s.retryIO(func() error {
		if k, ferr := faultinj.Cut(faultinj.SiteSpillWrite, len(data)); ferr != nil {
			if k > 0 {
				// A torn write: the prefix lands, then the device fails.
				s.f.WriteAt(data[:k], sg.off)
			}
			return ferr
		}
		_, werr := s.f.WriteAt(data, sg.off)
		return werr
	})
	if err != nil {
		s.free(sg)
		return seg{}, fmt.Errorf("bufmgr: spill write: %w", err)
	}
	return sg, nil
}

// alloc finds the first free extent that fits (returning the remainder
// to the list) or extends the file. Caller holds s.mu.
func (s *segStore) alloc(need int64) seg {
	for i, fr := range s.freeList {
		if fr.len >= need {
			out := seg{off: fr.off, len: need}
			if rem := fr.len - need; rem > 0 {
				s.freeList[i] = seg{off: fr.off + need, len: rem}
			} else {
				s.freeList = append(s.freeList[:i], s.freeList[i+1:]...)
			}
			return out
		}
	}
	out := seg{off: s.size, len: need}
	s.size += need
	return out
}

// get reads the extent and hands it to fn; the buffer is only valid for
// the duration of the call.
func (s *segStore) get(sg seg, fn func(data []byte) error) error {
	buf := make([]byte, sg.len)
	err := s.retryIO(func() error {
		if ferr := faultinj.Hit(faultinj.SiteSpillRead); ferr != nil {
			return ferr
		}
		_, rerr := s.f.ReadAt(buf, sg.off)
		return rerr
	})
	if err != nil {
		return fmt.Errorf("bufmgr: spill read: %w", err)
	}
	return fn(buf)
}

// free returns an extent to the free list, merging neighbors.
func (s *segStore) free(sg seg) {
	if sg.len <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live > 0 {
		s.live--
	}
	i := sort.Search(len(s.freeList), func(i int) bool { return s.freeList[i].off >= sg.off })
	s.freeList = append(s.freeList, seg{})
	copy(s.freeList[i+1:], s.freeList[i:])
	s.freeList[i] = sg
	// Merge with the successor, then the predecessor.
	if i+1 < len(s.freeList) && s.freeList[i].off+s.freeList[i].len == s.freeList[i+1].off {
		s.freeList[i].len += s.freeList[i+1].len
		s.freeList = append(s.freeList[:i+1], s.freeList[i+2:]...)
	}
	if i > 0 && s.freeList[i-1].off+s.freeList[i-1].len == s.freeList[i].off {
		s.freeList[i-1].len += s.freeList[i].len
		s.freeList = append(s.freeList[:i], s.freeList[i+1:]...)
	}
}

// fileBytes returns the spill file's current extent span.
func (s *segStore) fileBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// liveSegs returns the number of allocated (un-freed) extents.
func (s *segStore) liveSegs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// close releases the backing file and removes the per-process dir if it
// is empty (another live Manager in this process may still use it).
func (s *segStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if s.dir != "" {
		os.Remove(s.dir)
		s.dir = ""
	}
	return err
}
