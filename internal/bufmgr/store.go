package bufmgr

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// seg is one allocated extent of the spill file.
type seg struct {
	off int64
	len int64
}

// segStore is an append-mostly extent allocator over a single unlinked
// temp file. Freed extents go to a free list and are coalesced and
// reused, so a long-running server's spill file grows to the working-set
// high-water, not without bound. Reads use ReadAt and can run
// concurrently; allocation and free are serialized by the mutex.
type segStore struct {
	mu   sync.Mutex
	f    *os.File
	size int64
	live int64
	// free holds reusable extents sorted by offset (adjacent extents
	// are merged on free).
	freeList []seg
}

// openSegStore creates the store's backing file in dir and unlinks it
// immediately: the extents live only as long as the process (or until
// close), and a crash leaks nothing.
func openSegStore(dir string) (*segStore, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "fluxquery-spill-*")
	if err != nil {
		return nil, fmt.Errorf("bufmgr: spill store: %w", err)
	}
	// Unlink while keeping the descriptor: the file vanishes from the
	// namespace now and its blocks are reclaimed when the fd closes.
	if err := os.Remove(f.Name()); err != nil {
		f.Close()
		return nil, fmt.Errorf("bufmgr: spill store: %w", err)
	}
	return &segStore{f: f}, nil
}

// put writes data into a reused or fresh extent.
func (s *segStore) put(data []byte) (seg, error) {
	need := int64(len(data))
	s.mu.Lock()
	sg := s.alloc(need)
	s.live++
	s.mu.Unlock()
	if _, err := s.f.WriteAt(data, sg.off); err != nil {
		s.free(sg)
		return seg{}, fmt.Errorf("bufmgr: spill write: %w", err)
	}
	return sg, nil
}

// alloc finds the first free extent that fits (returning the remainder
// to the list) or extends the file. Caller holds s.mu.
func (s *segStore) alloc(need int64) seg {
	for i, fr := range s.freeList {
		if fr.len >= need {
			out := seg{off: fr.off, len: need}
			if rem := fr.len - need; rem > 0 {
				s.freeList[i] = seg{off: fr.off + need, len: rem}
			} else {
				s.freeList = append(s.freeList[:i], s.freeList[i+1:]...)
			}
			return out
		}
	}
	out := seg{off: s.size, len: need}
	s.size += need
	return out
}

// get reads the extent and hands it to fn; the buffer is only valid for
// the duration of the call.
func (s *segStore) get(sg seg, fn func(data []byte) error) error {
	buf := make([]byte, sg.len)
	if _, err := s.f.ReadAt(buf, sg.off); err != nil {
		return fmt.Errorf("bufmgr: spill read: %w", err)
	}
	return fn(buf)
}

// free returns an extent to the free list, merging neighbors.
func (s *segStore) free(sg seg) {
	if sg.len <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.live > 0 {
		s.live--
	}
	i := sort.Search(len(s.freeList), func(i int) bool { return s.freeList[i].off >= sg.off })
	s.freeList = append(s.freeList, seg{})
	copy(s.freeList[i+1:], s.freeList[i:])
	s.freeList[i] = sg
	// Merge with the successor, then the predecessor.
	if i+1 < len(s.freeList) && s.freeList[i].off+s.freeList[i].len == s.freeList[i+1].off {
		s.freeList[i].len += s.freeList[i+1].len
		s.freeList = append(s.freeList[:i+1], s.freeList[i+2:]...)
	}
	if i > 0 && s.freeList[i-1].off+s.freeList[i-1].len == s.freeList[i].off {
		s.freeList[i-1].len += s.freeList[i].len
		s.freeList = append(s.freeList[:i], s.freeList[i+1:]...)
	}
}

// fileBytes returns the spill file's current extent span.
func (s *segStore) fileBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// liveSegs returns the number of allocated (un-freed) extents.
func (s *segStore) liveSegs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// close releases the backing file.
func (s *segStore) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
