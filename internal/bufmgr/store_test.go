package bufmgr

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"fluxquery/internal/faultinj"
)

// TestSpillRetryTransient: an exactly-once injected write or read
// failure is absorbed by the retry loop — the operation succeeds, the
// data round-trips intact, and the retry is counted.
func TestSpillRetryTransient(t *testing.T) {
	defer faultinj.Reset()
	s, err := openSegStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	data := bytes.Repeat([]byte("spillme!"), 64)

	if err := faultinj.Arm(faultinj.SiteSpillWrite, faultinj.Fault{Mode: faultinj.ModeError, Times: 1}); err != nil {
		t.Fatal(err)
	}
	sg, err := s.put(data)
	if err != nil {
		t.Fatalf("transient write fault not retried: %v", err)
	}
	if got := s.retryCount(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}

	if err := faultinj.Arm(faultinj.SiteSpillRead, faultinj.Fault{Mode: faultinj.ModeError, Times: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.get(sg, func(got []byte) error {
		if !bytes.Equal(got, data) {
			t.Errorf("rehydrated bytes differ")
		}
		return nil
	}); err != nil {
		t.Fatalf("transient read fault not retried: %v", err)
	}
	if got := s.retryCount(); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

// TestSpillShortWriteRetried: a torn write (prefix lands, then the
// device fails) is retried as a full rewrite, so the extent holds the
// complete payload afterwards.
func TestSpillShortWriteRetried(t *testing.T) {
	defer faultinj.Reset()
	s, err := openSegStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	data := bytes.Repeat([]byte("torn-write-payload"), 32)
	if err := faultinj.Arm(faultinj.SiteSpillWrite, faultinj.Fault{Mode: faultinj.ModeShortWrite, Times: 1}); err != nil {
		t.Fatal(err)
	}
	sg, err := s.put(data)
	if err != nil {
		t.Fatalf("torn write not recovered: %v", err)
	}
	if err := s.get(sg, func(got []byte) error {
		if !bytes.Equal(got, data) {
			t.Errorf("extent holds torn data after retry")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSpillPersistentFailureSurfaces: a fault on every attempt exhausts
// the retry budget and surfaces as a classifiable error; the failed
// extent is returned to the free list (no leak).
func TestSpillPersistentFailureSurfaces(t *testing.T) {
	defer faultinj.Reset()
	s, err := openSegStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	if err := faultinj.Arm(faultinj.SiteSpillWrite, faultinj.Fault{Mode: faultinj.ModeError}); err != nil {
		t.Fatal(err)
	}
	_, err = s.put([]byte("doomed"))
	if !errors.Is(err, faultinj.ErrInjected) {
		t.Fatalf("persistent fault: got %v, want ErrInjected in chain", err)
	}
	if got := s.liveSegs(); got != 0 {
		t.Errorf("failed put leaked %d live segment(s)", got)
	}
	if got := s.retryCount(); got != spillRetryMax-1 {
		t.Errorf("retries = %d, want %d", got, spillRetryMax-1)
	}
}

// TestSweepStaleSpillDirs: Manager start removes per-process spill dirs
// of dead pids and leaves live-pid dirs and unrelated entries alone.
func TestSweepStaleSpillDirs(t *testing.T) {
	dir := t.TempDir()
	// A pid one past the kernel's default maximum can never be alive.
	stale := filepath.Join(dir, spillDirPrefix+"4194305")
	mine := filepath.Join(dir, spillDirPrefix+strconv.Itoa(os.Getpid()))
	other := filepath.Join(dir, "unrelated")
	junk := filepath.Join(dir, spillDirPrefix+"notapid")
	for _, d := range []string{stale, mine, other, junk} {
		if err := os.MkdirAll(d, 0o700); err != nil {
			t.Fatal(err)
		}
	}
	sweepStaleSpillDirs(dir)
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Error("stale dead-pid dir not swept")
	}
	for _, d := range []string{mine, other, junk} {
		if _, err := os.Stat(d); err != nil {
			t.Errorf("sweep removed %s: %v", d, err)
		}
	}
}

// TestSegStoreDirLifecycle: the per-process dir exists while the store
// is open (the backing file itself is unlinked) and is removed on close.
func TestSegStoreDirLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := openSegStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	procDir := filepath.Join(dir, spillDirPrefix+strconv.Itoa(os.Getpid()))
	if fi, err := os.Stat(procDir); err != nil || !fi.IsDir() {
		t.Fatalf("per-process dir missing while open: %v", err)
	}
	entries, err := os.ReadDir(procDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("backing file not unlinked: %d entries", len(entries))
	}
	if err := s.close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(procDir); !errors.Is(err, os.ErrNotExist) {
		t.Error("per-process dir not removed on close")
	}
}

// TestGateBindCancelUnparksWait: a gate parked in a backpressure wait
// unparks when its bound context is cancelled, returning the context's
// error instead of stalling until the budget drains.
func TestGateBindCancelUnparksWait(t *testing.T) {
	m := New(Config{Budget: 100, Policy: PolicyBackpressure})
	defer m.Close()

	// holder keeps the budget exceeded so waiter's Wait must park.
	holder := m.NewGate()
	defer holder.Close()
	ha := holder.NewAccount()
	defer ha.Close()
	if err := ha.Filled(nil, 150, false); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	waiter := m.NewGate()
	defer waiter.Close()
	waiter.Bind(ctx)

	done := make(chan error, 1)
	go func() { done <- waiter.Wait() }()
	select {
	case err := <-done:
		t.Fatalf("Wait returned before cancel: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait error = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancel did not unpark the gate wait")
	}

	// A cancelled gate stays cancelled: further waits fail fast.
	if err := waiter.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("post-cancel Wait = %v, want context.Canceled", err)
	}
}
