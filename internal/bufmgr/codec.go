package bufmgr

import (
	"encoding/binary"
	"fmt"

	"fluxquery/internal/dom"
	"fluxquery/internal/xmltok"
)

// This file implements the compact dom↔bytes codec the spill path uses
// to serialize a buffered subtree's children into a segment and restore
// them on rehydration. The format is a preorder walk with uvarint
// lengths:
//
//	children  := count:uvarint node*
//	node      := kindText len:uvarint bytes
//	           | kindElem nameLen:uvarint name
//	             attrCount:uvarint (nameLen name valLen val)*
//	             children
//
// Only element and text nodes occur inside runtime buffers (document
// nodes are synthetic roots and never buffered); the decoder rejects
// anything else, so a corrupted segment surfaces as an error instead of
// a mis-shaped tree.
const (
	kindText byte = 0x01
	kindElem byte = 0x02
)

// EncodeChildren serializes n's children (not n itself — the spill stub
// keeps the root's name and attributes resident).
func EncodeChildren(n *dom.Node) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
	for _, c := range n.Children {
		buf = appendNode(buf, c)
	}
	return buf
}

func appendNode(buf []byte, n *dom.Node) []byte {
	switch n.Kind {
	case dom.TextNode:
		buf = append(buf, kindText)
		buf = appendString(buf, n.Text)
	default: // ElementNode (document nodes never occur inside buffers)
		buf = append(buf, kindElem)
		buf = appendString(buf, n.Name)
		buf = binary.AppendUvarint(buf, uint64(len(n.Attrs)))
		for _, a := range n.Attrs {
			buf = appendString(buf, a.Name)
			buf = appendString(buf, a.Value)
		}
		buf = binary.AppendUvarint(buf, uint64(len(n.Children)))
		for _, c := range n.Children {
			buf = appendNode(buf, c)
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeChildren restores a subtree's children from data onto n,
// re-establishing parent links. It is the exact inverse of
// EncodeChildren.
func DecodeChildren(n *dom.Node, data []byte) error {
	d := decoder{data: data}
	count, err := d.uvarint()
	if err != nil {
		return err
	}
	kids, err := d.nodes(count, 0)
	if err != nil {
		return err
	}
	if len(d.data) != d.pos {
		return fmt.Errorf("bufmgr: codec: %d trailing bytes", len(d.data)-d.pos)
	}
	n.Children = kids
	for _, c := range kids {
		c.Parent = n
	}
	return nil
}

// maxDecodeDepth bounds recursion so a corrupted or adversarial segment
// cannot blow the stack.
const maxDecodeDepth = 10_000

type decoder struct {
	data []byte
	pos  int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("bufmgr: codec: bad varint at %d", d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	ln, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if ln > uint64(len(d.data)-d.pos) {
		return "", fmt.Errorf("bufmgr: codec: string length %d exceeds remaining %d", ln, len(d.data)-d.pos)
	}
	s := string(d.data[d.pos : d.pos+int(ln)])
	d.pos += int(ln)
	return s, nil
}

func (d *decoder) nodes(count uint64, depth int) ([]*dom.Node, error) {
	if count > uint64(len(d.data)-d.pos) {
		// Every node costs at least one byte; reject impossible counts
		// before allocating.
		return nil, fmt.Errorf("bufmgr: codec: child count %d exceeds remaining %d bytes", count, len(d.data)-d.pos)
	}
	out := make([]*dom.Node, 0, count)
	for i := uint64(0); i < count; i++ {
		n, err := d.node(depth)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}

func (d *decoder) node(depth int) (*dom.Node, error) {
	if depth > maxDecodeDepth {
		return nil, fmt.Errorf("bufmgr: codec: nesting exceeds %d", maxDecodeDepth)
	}
	if d.pos >= len(d.data) {
		return nil, fmt.Errorf("bufmgr: codec: truncated at %d", d.pos)
	}
	kind := d.data[d.pos]
	d.pos++
	switch kind {
	case kindText:
		text, err := d.str()
		if err != nil {
			return nil, err
		}
		return dom.NewText(text), nil
	case kindElem:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		n := dom.NewElement(name)
		attrs, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if attrs > uint64(len(d.data)-d.pos) {
			return nil, fmt.Errorf("bufmgr: codec: attr count %d exceeds remaining %d bytes", attrs, len(d.data)-d.pos)
		}
		for i := uint64(0); i < attrs; i++ {
			an, err := d.str()
			if err != nil {
				return nil, err
			}
			av, err := d.str()
			if err != nil {
				return nil, err
			}
			n.Attrs = append(n.Attrs, xmltok.Attr{Name: an, Value: av})
		}
		count, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		kids, err := d.nodes(count, depth+1)
		if err != nil {
			return nil, err
		}
		n.Children = kids
		for _, c := range kids {
			c.Parent = n
		}
		return n, nil
	default:
		return nil, fmt.Errorf("bufmgr: codec: unknown node kind 0x%02x at %d", kind, d.pos-1)
	}
}
