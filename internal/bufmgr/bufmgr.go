// Package bufmgr is the engine's memory-governed buffer manager: it
// turns the paper's buffer-minimization *metric* (the deterministic byte
// accounting of internal/dom, reported as Stats.PeakBufferBytes) into an
// operational *guarantee*. A process-global Manager owns a configurable
// byte budget; every BDF buffer-fill point in the runtime reserves
// against it through a per-plan Account and releases when the evaluator
// frees the buffer, so the live heap residency of all buffered subtrees
// is known at every instant.
//
// Three overflow policies decide what happens when a reservation would
// exceed the budget:
//
//   - PolicyFail: the reservation returns ErrBudgetExceeded and the plan
//     aborts deterministically. The cap applies per Account (per plan),
//     so in a shared pass one over-budget query errors without poisoning
//     its siblings.
//   - PolicySpill: the Account evicts its coldest buffered subtrees —
//     largest first — to a temp-file segment store (dom↔bytes codec,
//     codec.go) and rehydrates them transparently on first evaluator
//     access (the dom.Node Lazy hook). Live heap buffer bytes stay under
//     the budget whenever any spillable subtree remains.
//   - PolicyBackpressure: reservations always succeed, but the pass's
//     Gate blocks the stream driver (runtime feed loop, mqe dispatcher)
//     while the manager is over budget and another pass still holds
//     reservations it can drain. A shared pass therefore throttles
//     instead of dying; the gate's deadlock rule guarantees that at
//     least one pass always proceeds.
//
// Locking: the reservation ledger lives under the Manager mutex. An
// Account is owned by one evaluator goroutine; spilling and rehydration
// touch only that account's own subtrees, so no cross-goroutine tree
// access ever happens (a sibling plan's evaluator may be reading its
// buffers concurrently — they are never victims of another account).
package bufmgr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"fluxquery/internal/dom"
)

// Policy selects the overflow behavior of a Manager.
type Policy int

// Overflow policies.
const (
	// PolicyFail rejects the reservation that would push an account past
	// the budget with ErrBudgetExceeded.
	PolicyFail Policy = iota
	// PolicySpill serializes cold buffered subtrees to disk to stay
	// under the budget, rehydrating on first access.
	PolicySpill
	// PolicyBackpressure blocks the stream driver at its Gate until
	// reservations drain elsewhere in the process.
	PolicyBackpressure
)

// String returns the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case PolicyFail:
		return "fail"
	case PolicySpill:
		return "spill"
	case PolicyBackpressure:
		return "backpressure"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a flag value ("fail", "spill", "backpressure").
func ParsePolicy(s string) (Policy, bool) {
	switch s {
	case "fail":
		return PolicyFail, true
	case "spill":
		return PolicySpill, true
	case "backpressure":
		return PolicyBackpressure, true
	default:
		return 0, false
	}
}

// ErrBudgetExceeded reports a reservation rejected under PolicyFail.
// Errors returned by the manager match it under errors.Is.
var ErrBudgetExceeded = errors.New("bufmgr: buffer budget exceeded")

// BudgetError carries the ledger state of a rejected reservation.
type BudgetError struct {
	// Budget is the configured byte budget.
	Budget int64
	// Held is what the rejected account already held.
	Held int64
	// Need is the reservation that did not fit.
	Need int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("bufmgr: buffer budget exceeded: plan holds %d B, needs %d B more, budget %d B",
		e.Held, e.Need, e.Budget)
}

// Is makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Config configures a Manager.
type Config struct {
	// Budget bounds the live heap bytes of all buffered data governed by
	// the manager. <= 0 disables enforcement (the manager still
	// accounts, so metrics stay available).
	Budget int64
	// Policy selects the overflow behavior.
	Policy Policy
	// SpillDir is where PolicySpill keeps its segment file ("" =
	// os.TempDir()). The file is created lazily on first spill and
	// unlinked immediately, so it can never outlive the process.
	SpillDir string
	// SpillUnit is the eviction granularity: a freshly buffered subtree
	// is cut into disjoint chunks of at most roughly this many bytes
	// (descending into element children until a piece fits) and each
	// chunk spills and rehydrates independently. Small units are what
	// keep residency bounded when a once-handler iterates a buffer much
	// larger than the budget — only the chunk under the evaluator's
	// cursor needs to be resident. 0 derives a unit from the budget
	// (budget/16, clamped to [256 B, 64 KiB]).
	SpillUnit int64
}

// Manager is a process-global buffer-memory governor. All methods are
// safe for concurrent use.
type Manager struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond
	// total is the live heap bytes currently reserved across accounts.
	total int64
	peak  int64
	// gates tracks every open Gate for the backpressure holder scan.
	gates  map[*Gate]struct{}
	store  *segStore
	closed bool

	// metrics
	spilledBytes    int64
	rehydratedBytes int64
	spillOps        int64
	rehydrateOps    int64
	stallNanos      int64
	stalls          int64
	rejections      int64
	overshootPeak   int64
}

// New returns a Manager for the given configuration. Start-up also
// sweeps the configured spill directory for segment dirs orphaned by
// dead processes (see sweepStaleSpillDirs) — the one leak the unlinked
// segment file cannot prevent is its parent per-process directory.
func New(cfg Config) *Manager {
	m := &Manager{cfg: cfg, gates: map[*Gate]struct{}{}}
	m.cond = sync.NewCond(&m.mu)
	sweepStaleSpillDirs(cfg.SpillDir)
	return m
}

// Budget returns the configured byte budget (<= 0 when unenforced).
func (m *Manager) Budget() int64 { return m.cfg.Budget }

// Policy returns the configured overflow policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

// enforced reports whether the budget is active.
func (m *Manager) enforced() bool { return m != nil && m.cfg.Budget > 0 }

// Close releases the spill store. Accounts and gates must be closed
// first; Close is idempotent.
func (m *Manager) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.store != nil {
		return m.store.close()
	}
	return nil
}

// Metrics is a point-in-time snapshot of the manager's counters.
type Metrics struct {
	// Budget and Policy echo the configuration.
	Budget int64  `json:"budget"`
	Policy string `json:"policy"`
	// ReservedBytes is the current live reservation total;
	// PeakReservedBytes its high-water mark.
	ReservedBytes     int64 `json:"reserved_bytes"`
	PeakReservedBytes int64 `json:"peak_reserved_bytes"`
	// OvershootPeakBytes is the high-water of reservations past the
	// budget (spill had no victims left, or backpressure force-granted).
	OvershootPeakBytes int64 `json:"overshoot_peak_bytes"`
	// SpilledBytes/SpillOps and RehydratedBytes/RehydrateOps count
	// spill-store traffic (cumulative).
	SpilledBytes    int64 `json:"spilled_bytes"`
	SpillOps        int64 `json:"spill_ops"`
	RehydratedBytes int64 `json:"rehydrated_bytes"`
	RehydrateOps    int64 `json:"rehydrate_ops"`
	// SpillFileBytes/SpillSegsLive describe the segment file.
	SpillFileBytes int64 `json:"spill_file_bytes"`
	SpillSegsLive  int64 `json:"spill_segs_live"`
	// SpillRetries counts transparently retried spill I/O operations
	// (transient write/read failures absorbed by the backoff loop).
	SpillRetries int64 `json:"spill_retries"`
	// Stall/Stalls accumulate backpressure gate waits. Stall marshals as
	// integer nanoseconds, keeping the JSON wire format of the old
	// StallNanos field.
	Stall  time.Duration `json:"stall_nanos"`
	Stalls int64         `json:"stalls"`
	// Rejections counts PolicyFail budget errors.
	Rejections int64 `json:"rejections"`
}

// Metrics returns a snapshot of the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	mt := Metrics{
		Budget:             m.cfg.Budget,
		Policy:             m.cfg.Policy.String(),
		ReservedBytes:      m.total,
		PeakReservedBytes:  m.peak,
		OvershootPeakBytes: m.overshootPeak,
		SpilledBytes:       m.spilledBytes,
		SpillOps:           m.spillOps,
		RehydratedBytes:    m.rehydratedBytes,
		RehydrateOps:       m.rehydrateOps,
		Stall:              time.Duration(m.stallNanos),
		Stalls:             m.stalls,
		Rejections:         m.rejections,
	}
	if m.store != nil {
		mt.SpillFileBytes = m.store.fileBytes()
		mt.SpillSegsLive = m.store.liveSegs()
		mt.SpillRetries = m.store.retryCount()
	}
	return mt
}

// commitLocked adds n (possibly negative) to the ledger.
func (m *Manager) commitLocked(g *Gate, n int64) {
	m.total += n
	if m.total > m.peak {
		m.peak = m.total
	}
	if over := m.total - m.cfg.Budget; m.cfg.Budget > 0 && over > m.overshootPeak {
		m.overshootPeak = over
	}
	if g != nil {
		g.held += n
	}
	if n < 0 {
		// Drained reservations may unblock backpressure waiters.
		m.cond.Broadcast()
	}
}

// segstore returns the lazily created spill store.
func (m *Manager) segstore() (*segStore, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("bufmgr: manager closed")
	}
	if m.store == nil {
		st, err := openSegStore(m.cfg.SpillDir)
		if err != nil {
			return nil, err
		}
		m.store = st
	}
	return m.store, nil
}

// Gate is one stream pass's backpressure point. The driver that feeds
// the pass calls Wait before each batch; under PolicyBackpressure the
// call blocks while the process is over budget and some other pass still
// holds reservations it can drain.
type Gate struct {
	m *Manager
	// ctx, when non-nil, cancels the pass: Wait returns its error
	// instead of (or while) blocking. Set once by Bind before the pass
	// starts; the watcher goroutine broadcasts the manager condition on
	// cancellation so parked waiters re-check and unpark.
	ctx       context.Context
	stopWatch chan struct{}
	// held aggregates the reservations of all attached accounts
	// (guarded by m.mu).
	held int64
	// waiting marks the gate blocked in Wait (guarded by m.mu). A
	// waiting pass cannot drain anything, so it does not count as a
	// holder for other gates' wait conditions — the rule that makes the
	// whole scheme deadlock-free: the last would-be waiter always
	// proceeds.
	waiting bool
	stall   int64
	closed  bool
}

// NewGate registers a new pass with the manager.
func (m *Manager) NewGate() *Gate {
	if m == nil {
		return nil
	}
	g := &Gate{m: m}
	m.mu.Lock()
	m.gates[g] = struct{}{}
	m.mu.Unlock()
	return g
}

// Bind attaches a cancellation context to the gate. It must be called
// before the pass's first Wait; the gate holds one watcher goroutine
// until Close (or cancellation, whichever is first) so that a Wait
// parked on the backpressure condition unparks when ctx is cancelled.
func (g *Gate) Bind(ctx context.Context) {
	if g == nil || ctx == nil || ctx.Done() == nil {
		return
	}
	g.ctx = ctx
	if !g.m.enforced() || g.m.cfg.Policy != PolicyBackpressure {
		// No condition waits to unpark: Wait polls ctx.Err directly.
		return
	}
	m := g.m
	stop := make(chan struct{})
	g.stopWatch = stop
	go func() {
		select {
		case <-ctx.Done():
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		case <-stop:
		}
	}()
}

// Wait blocks per the backpressure rule and returns nil when the pass
// may proceed. With a bound context it returns the context's error as
// soon as the pass is cancelled — also from inside a parked wait, which
// the Bind watcher unblocks. It is a no-op on a nil gate and a pure
// cancellation check under any policy other than backpressure.
func (g *Gate) Wait() error {
	if g == nil {
		return nil
	}
	if g.ctx != nil {
		if err := g.ctx.Err(); err != nil {
			return err
		}
	}
	if !g.m.enforced() || g.m.cfg.Policy != PolicyBackpressure {
		return nil
	}
	m := g.m
	m.mu.Lock()
	var start time.Time
	for m.total > m.cfg.Budget && m.otherHolderLocked(g) {
		if g.ctx != nil && g.ctx.Err() != nil {
			break
		}
		if start.IsZero() {
			start = time.Now()
			m.stalls++
		}
		g.waiting = true
		// This gate just became a non-drainer: wake the others so they
		// re-evaluate their own wait conditions.
		m.cond.Broadcast()
		m.cond.Wait()
	}
	g.waiting = false
	if !start.IsZero() {
		d := time.Since(start).Nanoseconds()
		g.stall += d
		m.stallNanos += d
	}
	m.mu.Unlock()
	if g.ctx != nil {
		return g.ctx.Err()
	}
	return nil
}

// otherHolderLocked reports whether some other pass holds reservations
// and is not itself blocked — i.e. whether waiting can help.
func (m *Manager) otherHolderLocked(g *Gate) bool {
	for h := range m.gates {
		if h != g && h.held > 0 && !h.waiting {
			return true
		}
	}
	return false
}

// Stall returns the cumulative time the gate has spent blocked.
func (g *Gate) Stall() time.Duration {
	if g == nil {
		return 0
	}
	g.m.mu.Lock()
	defer g.m.mu.Unlock()
	return time.Duration(g.stall)
}

// Close deregisters the pass. Attached accounts must be closed first.
func (g *Gate) Close() {
	if g == nil {
		return
	}
	if g.stopWatch != nil {
		close(g.stopWatch)
		g.stopWatch = nil
	}
	m := g.m
	m.mu.Lock()
	if !g.closed {
		g.closed = true
		delete(m.gates, g)
		// A departing holder can change other gates' wait conditions.
		m.cond.Broadcast()
	}
	m.mu.Unlock()
}

// Account is one plan execution's reservation ledger. It is owned by a
// single evaluator goroutine: Filled, Freed, Release, Pin and Unpin must
// not be called concurrently (Close may be called by the driver after
// the evaluator has terminated).
type Account struct {
	m *Manager
	g *Gate
	// unit is the account's eviction granularity (see Config.SpillUnit).
	unit int64
	// held is the account's live heap reservation; peak its high-water.
	held int64
	peak int64
	// victims registers the account's spillable buffered subtrees.
	victims map[*dom.Node]*spillRec
	// redrop is the MRU stack of rehydrated units: their segments are
	// still on disk, so dropping one is free (no encode, no write) and
	// O(1). Entries go stale when a unit is freed or re-dropped through
	// another path; pops skip them.
	redrop []redropEntry

	spilledBytes    int64
	rehydratedBytes int64
	spillOps        int64
	rehydrateOps    int64
	// ticks stamps fill/rehydrate order onto units for MRU re-drops.
	ticks  int64
	closed bool
}

// spillRec is the spill state of one tracked buffered subtree.
type spillRec struct {
	// logical is the subtree's full accounted size at fill time;
	// payload the spillable portion (children only — the root node's
	// name and attributes stay resident so handler-free matching and
	// attribute axes work without disk access).
	logical int64
	payload int64
	seg     seg
	onDisk  bool
	// resident marks the children heap-resident (true for a fresh fill
	// and after rehydration; a rehydrated subtree keeps its segment so
	// dropping it again is free).
	resident bool
	pins     int
	// seq is the unit's last fill/rehydrate tick, for the MRU re-drop
	// order (see makeRoom).
	seq int64
	// dead marks a freed unit; stale stack entries check it.
	dead bool
}

type redropEntry struct {
	n   *dom.Node
	rec *spillRec
}

// NewAccount attaches a new account to the gate's pass.
func (g *Gate) NewAccount() *Account {
	if g == nil {
		return nil
	}
	a := &Account{m: g.m, g: g, unit: g.m.cfg.SpillUnit}
	if a.unit <= 0 {
		a.unit = g.m.cfg.Budget / 16
		if a.unit < 256 {
			a.unit = 256
		}
		if a.unit > 64<<10 {
			a.unit = 64 << 10
		}
	}
	return a
}

// Filled reserves logical bytes of freshly buffered data rooted at n in
// one step, applying the overflow policy. spillable cuts n into spill
// units and registers them as eviction candidates; text fills pass
// false. n may be nil when spillable is false. (Bulk fills reserve
// before the units register, so they can only spill *previously* filled
// data; the materializer streams large fills through a Filler instead.)
func (a *Account) Filled(n *dom.Node, logical int64, spillable bool) error {
	if a == nil || logical <= 0 {
		return nil
	}
	if err := a.reserve(logical); err != nil {
		return err
	}
	if spillable && n != nil {
		a.registerUnits(n, logical)
	}
	return nil
}

// Filler incrementally accounts one materializing subtree against the
// account. The runtime's materializer streams construction through it —
// Push on a kept element start, Text on a kept text node, Pop on the
// element end — and the filler reserves and registers eviction units as
// subtrees complete, instead of one bulk reservation at the end. That is
// what lets a buffer far larger than the budget build up without ever
// holding more than the budget in accounted residency: each completed
// unit's reservation may spill the units completed before it.
//
// The unit cut is the same as registerUnits': a completed element of at
// most unit bytes (or with nothing but text below it) rides along as a
// candidate; the first oversized ancestor registers and reserves its
// candidates as units and leaves its own skeleton to the final Finish
// reservation.
type Filler struct {
	a *Account
	// stack mirrors the materializer's kept-element stack.
	stack []fillFrame
	// reserved is what the filler has already committed; Finish reserves
	// the remainder of the root's total.
	reserved int64
}

type fillFrame struct {
	node *dom.Node
	size int64
	// elemKids marks that at least one element child was pushed; an
	// oversized frame with nothing but text below it registers itself
	// as one (unsplittable) unit, mirroring cutWalk's rule.
	elemKids bool
	// cands are completed child subtrees still small enough to merge
	// into this frame's unit. They are reserved and registered the
	// moment the frame's accumulated size passes the unit threshold —
	// the frame can then never merge them (size only grows) — so the
	// built-but-unaccounted backlog is bounded by one unit per open
	// frame, not by the subtree.
	cands []fillCand
}

type fillCand struct {
	node *dom.Node
	size int64
}

// NewFiller starts the incremental accounting of one buffered subtree
// rooted at root (nil account returns a nil filler; all methods are
// nil-safe no-ops so the unmanaged path stays zero-cost).
func (a *Account) NewFiller(root *dom.Node) *Filler {
	if a == nil {
		return nil
	}
	f := &Filler{a: a}
	f.stack = append(f.stack, fillFrame{node: root, size: root.SelfSize()})
	return f
}

// Push mirrors a kept child element start.
func (f *Filler) Push(n *dom.Node) {
	if f == nil {
		return
	}
	f.stack[len(f.stack)-1].elemKids = true
	f.stack = append(f.stack, fillFrame{node: n, size: n.SelfSize()})
}

// Text mirrors a kept text node appended to the current element.
func (f *Filler) Text(n *dom.Node) {
	if f == nil {
		return
	}
	f.stack[len(f.stack)-1].size += n.SelfSize()
}

// Pop mirrors the current element's end tag. It may reserve (and spill)
// as completed subtrees pass the unit threshold; a budget rejection
// aborts the materialization.
func (f *Filler) Pop() error {
	if f == nil {
		return nil
	}
	top := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	parent := &f.stack[len(f.stack)-1]
	parent.size += top.size
	if top.size <= f.a.unit {
		// Small enough to be one unit. While the parent itself still
		// fits under the threshold it may yet merge its children into
		// one larger unit, and the deferred backlog is bounded by the
		// unit size; the moment it outgrows that, its candidates are
		// committed units — reserve them now, mid-parse.
		parent.cands = append(parent.cands, fillCand{node: top.node, size: top.size})
		if parent.size > f.a.unit {
			return f.flushCands(parent)
		}
		return nil
	}
	if !top.elemKids {
		// Oversized but nothing below it except text: unsplittable,
		// register the element itself (cutWalk's rule) so large text
		// blocks stay evictable.
		if err := f.a.reserve(top.size); err != nil {
			return err
		}
		f.reserved += top.size
		f.a.track(top.node, top.size)
		return nil
	}
	// Oversized: remaining candidates (accumulated before the frame
	// crossed the threshold via text) become units; the skeleton is
	// reserved by Finish.
	return f.flushCands(&top)
}

// flushCands reserves and registers a frame's accumulated candidate
// units and empties the list.
func (f *Filler) flushCands(fr *fillFrame) error {
	err := f.a.reserveUnits(fr.cands, &f.reserved)
	fr.cands = fr.cands[:0]
	return err
}

// Finish completes the subtree's accounting: the root's remaining bytes
// (its skeleton plus everything not yet reserved) are reserved in one
// step and the root-level units registered. It returns the subtree's
// full logical size as streamed through the filler — the caller must
// record *this* in its logical ledger, not a post-hoc Size() walk, which
// under-reports whenever pressure already spilled units of this very
// subtree during construction.
func (f *Filler) Finish() (total int64, err error) {
	if f == nil {
		return 0, nil
	}
	root := f.stack[0]
	a := f.a
	total = root.size
	if root.size <= a.unit || !hasElementChild(root.node) {
		// The whole subtree is one unit.
		if err := a.reserve(total - f.reserved); err != nil {
			return total, err
		}
		a.track(root.node, total)
		return total, nil
	}
	if err := a.reserveUnits(root.cands, &f.reserved); err != nil {
		return total, err
	}
	return total, a.reserve(total - f.reserved)
}

// reserveUnits reserves and registers a batch of completed units,
// spilling older units for room as needed.
func (a *Account) reserveUnits(cands []fillCand, reserved *int64) error {
	for _, c := range cands {
		if err := a.reserve(c.size); err != nil {
			return err
		}
		*reserved += c.size
		a.track(c.node, c.size)
	}
	return nil
}

// reserve applies the overflow policy to n fresh bytes and commits them.
func (a *Account) reserve(n int64) error {
	if n <= 0 {
		return nil
	}
	m := a.m
	if m.enforced() {
		switch m.cfg.Policy {
		case PolicyFail:
			if a.held+n > m.cfg.Budget {
				m.mu.Lock()
				m.rejections++
				m.mu.Unlock()
				return &BudgetError{Budget: m.cfg.Budget, Held: a.held, Need: n}
			}
		case PolicySpill:
			if err := a.makeRoom(n); err != nil {
				return err
			}
		}
	}
	a.commit(n)
	return nil
}

// track registers one eviction unit of the given fill-time size.
func (a *Account) track(n *dom.Node, sz int64) {
	if a.m.cfg.Policy != PolicySpill || !a.m.enforced() {
		return
	}
	if payload := sz - n.SelfSize(); payload > 0 {
		if a.victims == nil {
			a.victims = make(map[*dom.Node]*spillRec)
		}
		a.ticks++
		a.victims[n] = &spillRec{logical: sz, payload: payload, resident: true, seq: a.ticks}
	}
}

// registerUnits cuts a freshly buffered subtree into disjoint eviction
// units: a node small enough (or with nothing but text below it) becomes
// one unit; an oversized node stays resident and its element children
// are cut recursively. Units are disjoint and never nested, so a spilled
// unit's segment always holds complete, self-contained content.
//
// The cut runs bottom-up in a single O(nodes) walk: every element
// registers itself when small enough, and a parent that also fits
// absorbs its directly registered children into one larger unit. A
// child that was itself oversized registered only its descendants (not
// itself), and then the parent is oversized too, so absorption never
// reaches past one level — units stay disjoint. sz is ignored (the walk
// computes exact sizes); it remains a parameter so callers that already
// know the size read naturally.
func (a *Account) registerUnits(n *dom.Node, sz int64) {
	if n.Kind != dom.ElementNode {
		return
	}
	a.cutWalk(n)
}

func (a *Account) cutWalk(n *dom.Node) int64 {
	sz := n.SelfSize()
	elemKids := false
	for _, c := range n.Children {
		if c.Kind == dom.ElementNode {
			elemKids = true
			sz += a.cutWalk(c)
		} else {
			sz += c.SelfSize()
		}
	}
	if sz <= a.unit || !elemKids {
		for _, c := range n.Children {
			delete(a.victims, c)
		}
		a.track(n, sz)
	}
	return sz
}

func hasElementChild(n *dom.Node) bool {
	for _, c := range n.Children {
		if c.Kind == dom.ElementNode {
			return true
		}
	}
	return false
}

// commit moves n bytes (possibly negative) through the ledgers.
func (a *Account) commit(n int64) {
	a.held += n
	if a.held > a.peak {
		a.peak = a.held
	}
	m := a.m
	m.mu.Lock()
	m.commitLocked(a.g, n)
	m.mu.Unlock()
}

// Release returns n bytes of untracked residency (text fills, or whole
// frames freed in one sweep after their tracked children were Freed).
func (a *Account) Release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.commit(-n)
}

// FreeTree releases one buffered subtree the evaluator is done with: it
// walks the resident part of the tree, removes every eviction unit it
// contains (returning spill segments to the store), and drains the
// resident bytes from the ledger in one commit. It reports the
// subtree's logical size — fill-time sizes for spilled units, resident
// sizes for the rest — which is what the caller's logical ledger must
// shrink by. Call it exactly once per buffered subtree.
func (a *Account) FreeTree(n *dom.Node) int64 {
	if a == nil {
		return n.Size()
	}
	logical, resident := a.freeWalk(n)
	a.commit(-resident)
	return logical
}

func (a *Account) freeWalk(n *dom.Node) (logical, resident int64) {
	if rec, ok := a.victims[n]; ok {
		delete(a.victims, n)
		rec.dead = true
		if rec.onDisk {
			a.m.freeSeg(rec.seg)
		}
		resident = rec.logical - rec.payload
		if rec.resident {
			resident = rec.logical
		}
		return rec.logical, resident
	}
	// Untracked node: its own bytes are resident; units can only occur
	// further down (they are never nested, and nothing is tracked below
	// a spilled stub).
	self := n.SelfSize()
	logical, resident = self, self
	for _, c := range n.Children {
		cl, cr := a.freeWalk(c)
		logical += cl
		resident += cr
	}
	return logical, resident
}

// Pin marks a tracked subtree unevictable while a handler replays it;
// Unpin reverses. Both are no-ops for untracked nodes.
func (a *Account) Pin(n *dom.Node) {
	if a == nil || a.victims == nil {
		return
	}
	if rec, ok := a.victims[n]; ok {
		rec.pins++
	}
}

// Unpin reverses Pin.
func (a *Account) Unpin(n *dom.Node) {
	if a == nil || a.victims == nil {
		return
	}
	if rec, ok := a.victims[n]; ok && rec.pins > 0 {
		rec.pins--
	}
}

// makeRoom spills the account's coldest resident units — largest first —
// until need more bytes fit under the budget or no victims remain (the
// reservation then overshoots; the overshoot high-water is recorded in
// the metrics). Once pressure triggers, it spills past the bare minimum
// by a headroom of budget/8 so that a steady stream of small fills pays
// for one victim scan per chunk of traffic, not per fill.
func (a *Account) makeRoom(need int64) error {
	m := a.m
	m.mu.Lock()
	over := m.total + need - m.cfg.Budget
	m.mu.Unlock()
	if over <= 0 {
		return nil
	}
	// Free re-drops first: pop the MRU stack of rehydrated units, one at
	// a time and without headroom — each pop is O(1) and costs no I/O.
	// MRU is the optimal replacement for the cyclic scans a nested-loop
	// join makes over a buffer (LRU would evict exactly what the next
	// iteration needs next), and popping precisely enough preserves the
	// stable resident prefix that makes MRU work; a batched eviction
	// here would wipe the whole cursor trail every time.
	for over > 0 && len(a.redrop) > 0 {
		e := a.redrop[len(a.redrop)-1]
		a.redrop = a.redrop[:len(a.redrop)-1]
		rec := e.rec
		if rec.dead || !rec.resident || !rec.onDisk || rec.pins > 0 {
			continue // stale entry (freed, already dropped, or pinned)
		}
		freed, err := a.spillOne(e.n, rec)
		if err != nil {
			return err
		}
		over -= freed
	}
	if over <= 0 {
		return nil
	}
	// Fresh spills encode and write a segment and rescan the victim set,
	// so once pressure triggers this path it evicts past the bare
	// minimum by budget/8 of headroom — a steady stream of small fills
	// then pays for one scan per chunk of traffic, not per fill. Order:
	// largest cold buffer first, so each segment write retires the most
	// memory.
	over += m.cfg.Budget / 8
	type cand struct {
		n   *dom.Node
		rec *spillRec
	}
	var cands []cand
	for n, rec := range a.victims {
		if rec.resident && rec.pins == 0 && rec.payload > 0 {
			cands = append(cands, cand{n, rec})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].rec.payload > cands[j].rec.payload })
	for _, c := range cands {
		if over <= 0 {
			break
		}
		freed, err := a.spillOne(c.n, c.rec)
		if err != nil {
			return err
		}
		over -= freed
	}
	return nil
}

// spillOne evicts one resident subtree's children: to its retained
// segment when it has one (a rehydrated subtree), otherwise by encoding
// them into a fresh segment. It returns the bytes released.
func (a *Account) spillOne(n *dom.Node, rec *spillRec) (int64, error) {
	if !rec.onDisk {
		data := EncodeChildren(n)
		st, err := a.m.segstore()
		if err != nil {
			return 0, err
		}
		sg, err := st.put(data)
		if err != nil {
			return 0, err
		}
		rec.seg, rec.onDisk = sg, true
	}
	n.Children = nil
	n.Lazy = a.hydrateHook(rec)
	rec.resident = false
	a.commit(-rec.payload)
	a.spilledBytes += rec.payload
	a.spillOps++
	m := a.m
	m.mu.Lock()
	m.spilledBytes += rec.payload
	m.spillOps++
	m.mu.Unlock()
	return rec.payload, nil
}

// hydrateHook builds the dom.Node Lazy hook that restores a spilled
// subtree on first traversal. Rehydration reserves the payload again,
// which may in turn spill other cold subtrees of the same account — the
// mechanism that keeps residency bounded while a once-handler walks a
// buffer much larger than the budget. Hydration runs on the evaluator
// goroutine; an I/O failure panics and is converted into the plan's
// error by the runtime's recover wrapper.
func (a *Account) hydrateHook(rec *spillRec) func(*dom.Node) {
	return func(n *dom.Node) {
		rec.pins++
		if err := a.makeRoom(rec.payload); err != nil {
			rec.pins--
			panic(fmt.Errorf("bufmgr: rehydrate: %w", err))
		}
		st, err := a.m.segstore()
		if err == nil {
			err = st.get(rec.seg, func(data []byte) error {
				return DecodeChildren(n, data)
			})
		}
		rec.pins--
		if err != nil {
			panic(fmt.Errorf("bufmgr: rehydrate: %w", err))
		}
		rec.resident = true
		a.ticks++
		rec.seq = a.ticks
		a.redrop = append(a.redrop, redropEntry{n: n, rec: rec})
		a.commit(rec.payload)
		a.rehydratedBytes += rec.payload
		a.rehydrateOps++
		m := a.m
		m.mu.Lock()
		m.rehydratedBytes += rec.payload
		m.rehydrateOps++
		m.mu.Unlock()
	}
}

// AccountStats is the final ledger of one closed account.
type AccountStats struct {
	// PeakBytes is the account's live heap high-water mark.
	PeakBytes int64
	// SpilledBytes/RehydratedBytes count the account's spill traffic.
	SpilledBytes    int64
	RehydratedBytes int64
	SpillOps        int64
	RehydrateOps    int64
}

// Close releases everything the account still holds (an aborted plan
// dies with live buffers) and returns its final stats. It may be called
// from the driver goroutine once the evaluator has terminated; it is
// idempotent.
func (a *Account) Close() AccountStats {
	if a == nil {
		return AccountStats{}
	}
	st := AccountStats{
		PeakBytes:       a.peak,
		SpilledBytes:    a.spilledBytes,
		RehydratedBytes: a.rehydratedBytes,
		SpillOps:        a.spillOps,
		RehydrateOps:    a.rehydrateOps,
	}
	if a.closed {
		return st
	}
	a.closed = true
	for _, rec := range a.victims {
		if rec.onDisk {
			a.m.freeSeg(rec.seg)
		}
	}
	a.victims = nil
	if a.held != 0 {
		a.commit(-a.held)
	}
	return st
}

// freeSeg returns a segment to the store (no-op when the store was
// never created or already closed).
func (m *Manager) freeSeg(s seg) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st != nil {
		st.free(s)
	}
}
