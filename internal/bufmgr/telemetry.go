package bufmgr

import "fluxquery/internal/telemetry"

// RegisterMetrics publishes the manager's ledger as scrape-time series on
// reg. The gauge/counter functions read the live counters under the
// manager mutex at scrape time, so there is no second accounting path to
// drift from Metrics(); the hot path pays nothing. Nil manager or nil
// registry are no-ops.
func (m *Manager) RegisterMetrics(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.GaugeFunc("flux_bufmgr_budget_bytes",
		"Configured buffer budget in bytes (0 when unenforced).",
		func() int64 {
			if m.cfg.Budget > 0 {
				return m.cfg.Budget
			}
			return 0
		})
	reg.GaugeFunc("flux_bufmgr_reserved_bytes",
		"Live heap bytes currently reserved across all accounts.",
		m.lockedRead(func() int64 { return m.total }))
	reg.GaugeFunc("flux_bufmgr_reserved_peak_bytes",
		"High-water mark of reserved bytes.",
		m.lockedRead(func() int64 { return m.peak }))
	reg.GaugeFunc("flux_bufmgr_overshoot_peak_bytes",
		"High-water mark of reservations past the budget.",
		m.lockedRead(func() int64 { return m.overshootPeak }))
	reg.GaugeFunc("flux_bufmgr_spill_file_bytes",
		"Current size of the spill segment file.",
		func() int64 {
			m.mu.Lock()
			st := m.store
			m.mu.Unlock()
			if st == nil {
				return 0
			}
			return st.fileBytes()
		})
	reg.CounterFunc("flux_bufmgr_spilled_bytes_total",
		"Bytes written to the spill store.", telemetry.ScaleNone,
		m.lockedRead(func() int64 { return m.spilledBytes }))
	reg.CounterFunc("flux_bufmgr_spill_ops_total",
		"Spill operations performed.", telemetry.ScaleNone,
		m.lockedRead(func() int64 { return m.spillOps }))
	reg.CounterFunc("flux_bufmgr_rehydrated_bytes_total",
		"Bytes read back from the spill store.", telemetry.ScaleNone,
		m.lockedRead(func() int64 { return m.rehydratedBytes }))
	reg.CounterFunc("flux_bufmgr_rehydrate_ops_total",
		"Rehydrate operations performed.", telemetry.ScaleNone,
		m.lockedRead(func() int64 { return m.rehydrateOps }))
	reg.CounterFunc("flux_bufmgr_stall_seconds_total",
		"Cumulative time stream drivers spent blocked at backpressure gates.",
		telemetry.ScaleNanos,
		m.lockedRead(func() int64 { return m.stallNanos }))
	reg.CounterFunc("flux_bufmgr_stalls_total",
		"Backpressure gate stalls.", telemetry.ScaleNone,
		m.lockedRead(func() int64 { return m.stalls }))
	reg.CounterFunc("flux_bufmgr_rejections_total",
		"Reservations rejected under the fail policy.", telemetry.ScaleNone,
		m.lockedRead(func() int64 { return m.rejections }))
	reg.CounterFunc("flux_spill_retries_total",
		"Transient spill I/O failures absorbed by the retry loop.",
		telemetry.ScaleNone,
		func() int64 {
			m.mu.Lock()
			st := m.store
			m.mu.Unlock()
			if st == nil {
				return 0
			}
			return st.retryCount()
		})
}

// lockedRead wraps a counter read in the manager mutex for scrape-time
// snapshot functions.
func (m *Manager) lockedRead(f func() int64) func() int64 {
	return func() int64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return f()
	}
}
