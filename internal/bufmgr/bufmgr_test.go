package bufmgr

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"fluxquery/internal/dom"
)

func mustTree(t testing.TB, src string) *dom.Node {
	t.Helper()
	doc, err := dom.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc.Root()
}

func TestPolicyParseRoundTrip(t *testing.T) {
	for _, p := range []Policy{PolicyFail, PolicySpill, PolicyBackpressure} {
		got, ok := ParsePolicy(p.String())
		if !ok || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, ok)
		}
	}
	if _, ok := ParsePolicy("bogus"); ok {
		t.Error("ParsePolicy accepted bogus")
	}
}

func TestLedgerAndMetrics(t *testing.T) {
	m := New(Config{Budget: 1000, Policy: PolicyFail})
	defer m.Close()
	g := m.NewGate()
	a := g.NewAccount()
	if err := a.Filled(nil, 400, false); err != nil {
		t.Fatal(err)
	}
	if err := a.Filled(nil, 500, false); err != nil {
		t.Fatal(err)
	}
	a.Release(300)
	mt := m.Metrics()
	if mt.ReservedBytes != 600 || mt.PeakReservedBytes != 900 {
		t.Errorf("ledger: reserved %d peak %d, want 600/900", mt.ReservedBytes, mt.PeakReservedBytes)
	}
	st := a.Close()
	if st.PeakBytes != 900 {
		t.Errorf("account peak %d, want 900", st.PeakBytes)
	}
	if got := m.Metrics().ReservedBytes; got != 0 {
		t.Errorf("close did not drain: %d", got)
	}
	g.Close()
}

func TestFailPolicyPerAccountCap(t *testing.T) {
	m := New(Config{Budget: 100, Policy: PolicyFail})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a, b := g.NewAccount(), g.NewAccount()
	defer a.Close()
	defer b.Close()
	if err := a.Filled(nil, 90, false); err != nil {
		t.Fatal(err)
	}
	// The cap is per account: b's fill fits its own cap even though the
	// process total goes past the budget.
	if err := b.Filled(nil, 90, false); err != nil {
		t.Fatalf("sibling account rejected: %v", err)
	}
	err := a.Filled(nil, 20, false)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-cap fill: got %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Held != 90 || be.Need != 20 || be.Budget != 100 {
		t.Errorf("budget error detail: %+v", be)
	}
	if m.Metrics().Rejections != 1 {
		t.Errorf("rejections = %d", m.Metrics().Rejections)
	}
}

func TestSpillLargestColdFirst(t *testing.T) {
	m := New(Config{Budget: 1000, Policy: PolicySpill, SpillDir: t.TempDir(), SpillUnit: 1 << 20})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()

	small := mustTree(t, `<s><x>tiny</x></s>`)
	big := mustTree(t, `<b><x>`+string(make([]byte, 300))+`</x></b>`)
	for _, n := range []*dom.Node{small, big} {
		if err := a.Filled(n, n.Size(), true); err != nil {
			t.Fatal(err)
		}
	}
	reserved := m.Metrics().ReservedBytes
	// Force pressure: the next fill exceeds the budget, so the largest
	// cold subtree (big) must spill first.
	need := 1000 - reserved + 10
	if err := a.Filled(nil, need, false); err != nil {
		t.Fatal(err)
	}
	if len(big.Children) != 0 || big.Lazy == nil {
		t.Error("largest subtree was not spilled")
	}
	if len(small.Children) == 0 {
		t.Error("small subtree spilled although evicting big sufficed")
	}
	if m.Metrics().SpillOps != 1 {
		t.Errorf("spill ops = %d, want 1", m.Metrics().SpillOps)
	}
	if m.Metrics().ReservedBytes > 1000 {
		t.Errorf("still over budget after spill: %d", m.Metrics().ReservedBytes)
	}

	// First traversal rehydrates transparently.
	if got := big.StringValue(); got != string(make([]byte, 300)) {
		t.Errorf("rehydrated content differs (%d bytes)", len(got))
	}
	if m.Metrics().RehydrateOps != 1 {
		t.Errorf("rehydrate ops = %d, want 1", m.Metrics().RehydrateOps)
	}
}

func TestSpillSkipsPinned(t *testing.T) {
	m := New(Config{Budget: 500, Policy: PolicySpill, SpillDir: t.TempDir(), SpillUnit: 1 << 20})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()

	n := mustTree(t, `<b><x>`+string(make([]byte, 300))+`</x></b>`)
	if err := a.Filled(n, n.Size(), true); err != nil {
		t.Fatal(err)
	}
	a.Pin(n)
	if err := a.Filled(nil, 400, false); err != nil {
		t.Fatal(err)
	}
	if len(n.Children) == 0 {
		t.Fatal("pinned subtree was spilled")
	}
	a.Unpin(n)
	if err := a.Filled(nil, 400, false); err != nil {
		t.Fatal(err)
	}
	if len(n.Children) != 0 {
		t.Fatal("unpinned subtree survived pressure")
	}
}

func TestFreedReturnsSegmentAndLogicalSize(t *testing.T) {
	m := New(Config{Budget: 100, Policy: PolicySpill, SpillDir: t.TempDir(), SpillUnit: 1 << 20})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()

	n := mustTree(t, `<b><x>`+string(make([]byte, 200))+`</x></b>`)
	logical := n.Size()
	if err := a.Filled(n, logical, true); err != nil {
		t.Fatal(err)
	}
	// Over budget on arrival: spilled immediately on the next fill.
	if err := a.Filled(nil, 50, false); err != nil {
		t.Fatal(err)
	}
	if m.Metrics().SpillSegsLive != 1 {
		t.Fatalf("segments live = %d", m.Metrics().SpillSegsLive)
	}
	got := a.FreeTree(n)
	if got != logical {
		t.Errorf("FreeTree = %d; want %d", got, logical)
	}
	if m.Metrics().SpillSegsLive != 0 {
		t.Errorf("segment not returned: %d live", m.Metrics().SpillSegsLive)
	}
}

func TestRehydratedDropIsSegmentReuse(t *testing.T) {
	m := New(Config{Budget: 600, Policy: PolicySpill, SpillDir: t.TempDir(), SpillUnit: 1 << 20})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()

	n := mustTree(t, `<b><x>`+string(make([]byte, 400))+`</x></b>`)
	if err := a.Filled(n, n.Size(), true); err != nil {
		t.Fatal(err)
	}
	if err := a.Filled(nil, 500, false); err != nil { // spills n
		t.Fatal(err)
	}
	a.Release(500)
	_ = n.Kids()                                      // rehydrate
	if err := a.Filled(nil, 500, false); err != nil { // drops n again
		t.Fatal(err)
	}
	if len(n.Children) != 0 {
		t.Fatal("rehydrated subtree not dropped under pressure")
	}
	mt := m.Metrics()
	// The second eviction reuses the retained segment: one encode, one
	// extent, two spill ops.
	if mt.SpillOps != 2 || mt.SpillSegsLive != 1 {
		t.Errorf("spill ops %d segs %d, want 2/1", mt.SpillOps, mt.SpillSegsLive)
	}
	_ = n.Kids()
	if got := n.StringValue(); got != string(make([]byte, 400)) {
		t.Errorf("content after second rehydrate differs")
	}
}

func TestBackpressureGateBlocksAndDrains(t *testing.T) {
	m := New(Config{Budget: 100, Policy: PolicyBackpressure})
	defer m.Close()
	// Pass 1 holds memory past the budget.
	g1 := m.NewGate()
	a1 := g1.NewAccount()
	if err := a1.Filled(nil, 150, false); err != nil {
		t.Fatal(err)
	}
	// Pass 2 must block at its gate while pass 1 can drain.
	g2 := m.NewGate()
	released := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g2.Wait()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("gate did not block while another pass held memory")
	case <-time.After(30 * time.Millisecond):
	}
	close(released)
	a1.Close()
	g1.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("gate did not wake after the holder drained")
	}
	<-released
	if m.Metrics().Stalls != 1 || m.Metrics().Stall <= 0 {
		t.Errorf("stall metrics: %+v", m.Metrics())
	}
	if g2.Stall() <= 0 {
		t.Error("gate stall not recorded")
	}
	g2.Close()
}

func TestBackpressureLonePassNeverBlocks(t *testing.T) {
	m := New(Config{Budget: 10, Policy: PolicyBackpressure})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()
	if err := a.Filled(nil, 1000, false); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		g.Wait() // must not block: no other pass can drain
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("lone pass blocked at its own gate")
	}
}

func TestBackpressureMutualWaitersProgress(t *testing.T) {
	// Two over-budget passes waiting on each other must not deadlock:
	// the gate rule lets the last would-be waiter proceed.
	m := New(Config{Budget: 100, Policy: PolicyBackpressure})
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := m.NewGate()
			a := g.NewAccount()
			for j := 0; j < 50; j++ {
				g.Wait()
				if err := a.Filled(nil, 10, false); err != nil {
					t.Error(err)
					return
				}
			}
			a.Close()
			g.Close()
		}()
	}
	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(10 * time.Second):
		t.Fatal("mutually waiting passes deadlocked")
	}
}

func TestSegStoreReuseAndCoalesce(t *testing.T) {
	st, err := openSegStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.close()
	s1, _ := st.put(make([]byte, 100))
	s2, _ := st.put(make([]byte, 50))
	s3, _ := st.put(make([]byte, 25))
	if st.fileBytes() != 175 || st.liveSegs() != 3 {
		t.Fatalf("layout: %d bytes %d segs", st.fileBytes(), st.liveSegs())
	}
	// Free the first two: they coalesce into one 150-byte extent that
	// the next allocation reuses without growing the file.
	st.free(s1)
	st.free(s2)
	s4, _ := st.put(make([]byte, 150))
	if s4.off != 0 || st.fileBytes() != 175 {
		t.Errorf("coalesced extent not reused: off %d size %d", s4.off, st.fileBytes())
	}
	var got []byte
	if err := st.get(s3, func(d []byte) error { got = append(got, d...); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 25 {
		t.Errorf("read %d bytes", len(got))
	}
}

// TestFillerOversizedTextOnlyUnit: a streamed fill of an element whose
// only content is one huge text block must still register an eviction
// unit (the element itself), matching the registerUnits rule.
func TestFillerOversizedTextOnlyUnit(t *testing.T) {
	m := New(Config{Budget: 1 << 20, Policy: PolicySpill, SpillDir: t.TempDir(), SpillUnit: 256})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()

	root := dom.NewElement("r")
	fl := a.NewFiller(root)
	notes := dom.NewElement("notes")
	root.AppendChild(notes)
	fl.Push(notes)
	text := dom.NewText(strings.Repeat("x", 4096))
	notes.AppendChild(text)
	fl.Text(text)
	if err := fl.Pop(); err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.victims[notes]; !ok {
		t.Fatal("oversized text-only element not registered as a unit")
	}
}

// TestFillerIncrementalReservation: the filler must account a flat list
// of small children as they complete, not in one bulk step at Finish —
// otherwise a single large materialize dodges spill pressure entirely.
func TestFillerIncrementalReservation(t *testing.T) {
	m := New(Config{Budget: 1 << 20, Policy: PolicySpill, SpillDir: t.TempDir(), SpillUnit: 512})
	defer m.Close()
	g := m.NewGate()
	defer g.Close()
	a := g.NewAccount()
	defer a.Close()

	root := dom.NewElement("list")
	fl := a.NewFiller(root)
	for i := 0; i < 50; i++ {
		c := dom.NewElement("item")
		root.AppendChild(c)
		fl.Push(c)
		txt := dom.NewText(strings.Repeat("y", 100))
		c.AppendChild(txt)
		fl.Text(txt)
		if err := fl.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	midHeld := a.held
	total, err := fl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if midHeld == 0 {
		t.Fatal("nothing reserved before Finish: bulk accounting at the end")
	}
	if midHeld < total/2 {
		t.Errorf("only %d of %d reserved before Finish; backlog must stay near one unit", midHeld, total)
	}
	if a.held != total {
		t.Errorf("held %d != total %d after Finish", a.held, total)
	}
}

func TestNilSafety(t *testing.T) {
	var m *Manager
	g := m.NewGate()
	a := g.NewAccount()
	g.Wait()
	if err := a.Filled(nil, 100, false); err != nil {
		t.Fatal(err)
	}
	a.Release(100)
	a.Pin(nil)
	a.Unpin(nil)
	a.Close()
	g.Close()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
