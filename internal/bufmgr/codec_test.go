package bufmgr

import (
	"strings"
	"testing"

	"fluxquery/internal/dom"
	"fluxquery/internal/xmltok"
)

// roundTrip encodes n's children and decodes them onto a fresh stub.
func roundTrip(t testing.TB, n *dom.Node) *dom.Node {
	t.Helper()
	data := EncodeChildren(n)
	out := dom.NewElement(n.Name)
	out.Attrs = append([]xmltok.Attr(nil), n.Attrs...)
	if err := DecodeChildren(out, data); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestCodecRoundTripDocuments(t *testing.T) {
	docs := []string{
		`<a/>`,
		`<a>text</a>`,
		`<a k="v" k2="v2"><b/><c x="1">mid</c>tail</a>`,
		`<bib><book year="1994"><title>TCP/IP &amp; co</title><author><last>Stevens</last></author></book></bib>`,
		`<a>` + strings.Repeat(`<b p="q">deep</b>`, 200) + `</a>`,
		`<a><b><c><d><e>nested</e></d></c></b></a>`,
		`<a>` + strings.Repeat("x", 70000) + `</a>`, // multi-byte varint lengths
	}
	for _, src := range docs {
		n := mustTree(t, src)
		got := roundTrip(t, n)
		if got.String() != n.String() {
			t.Errorf("round trip changed %q:\n%s", src, got.String())
		}
		if got.Size() != n.Size() {
			t.Errorf("round trip changed accounted size of %q: %d vs %d", src, got.Size(), n.Size())
		}
		// Parent links must be re-established for every decoded node.
		var check func(p *dom.Node)
		check = func(p *dom.Node) {
			for _, c := range p.Children {
				if c.Parent != p {
					t.Fatalf("parent link broken under %q", src)
				}
				check(c)
			}
		}
		check(got)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	n := mustTree(t, `<a k="v"><b>text</b><c/></a>`)
	data := EncodeChildren(n)
	stub := dom.NewElement("a")
	// Truncations at every length must error, never mis-shape silently.
	for cut := 0; cut < len(data); cut++ {
		if err := DecodeChildren(stub, data[:cut]); err == nil && cut != lenPrefixOnlyOK(data, cut) {
			// A cut that lands exactly after "0 children" decodes fine;
			// everything else must fail.
			if cut > 1 {
				t.Fatalf("truncation at %d of %d decoded silently", cut, len(data))
			}
		}
	}
	// Unknown node kind.
	bad := append([]byte{1}, 0x7f)
	if err := DecodeChildren(stub, bad); err == nil {
		t.Error("unknown kind accepted")
	}
	// Child count far past the data must be rejected before allocating.
	if err := DecodeChildren(stub, []byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Error("absurd child count accepted")
	}
}

// lenPrefixOnlyOK reports the only truncation point that legally
// decodes: an empty child list.
func lenPrefixOnlyOK(data []byte, cut int) int {
	if cut == 1 && data[0] == 0 {
		return cut
	}
	return -1
}

// FuzzCodecRoundTrip decodes arbitrary bytes; the decoder must never
// panic or mis-link parents, and whatever decodes must survive an
// encode/decode cycle unchanged with the re-encoding a fixpoint. (Byte
// canonicality of arbitrary input is not required — binary.Uvarint
// accepts non-minimal varints — but the encoder's own output is.)
func FuzzCodecRoundTrip(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a>t</a>`,
		`<a k="v"><b/>x<c y="z">w</c></a>`,
		`<bib><book year="1994"><title>T</title></book></bib>`,
	}
	for _, src := range seeds {
		doc, err := dom.ParseString(src)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeChildren(doc.Root()))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		stub := dom.NewElement("fuzz")
		if err := DecodeChildren(stub, data); err != nil {
			return
		}
		re := EncodeChildren(stub)
		again := dom.NewElement("fuzz")
		if err := DecodeChildren(again, re); err != nil {
			t.Fatalf("re-encoding does not decode: %v", err)
		}
		if again.String() != stub.String() || again.Size() != stub.Size() {
			t.Fatalf("encode/decode cycle changed the tree:\n%s\nvs\n%s", stub, again)
		}
		if re2 := EncodeChildren(again); string(re2) != string(re) {
			t.Fatalf("encoder not a fixpoint:\n%x\nvs\n%x", re, re2)
		}
		var check func(p *dom.Node)
		check = func(p *dom.Node) {
			for _, c := range p.Children {
				if c.Parent != p {
					t.Fatal("parent link broken")
				}
				check(c)
			}
		}
		check(stub)
	})
}
