package fluxquery

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/workload"
	"fluxquery/internal/xmlgen"
)

// runEngines executes the same (query, dtd, document) on all three
// engines and returns their outputs and stats.
func runEngines(t *testing.T, query, dtdSrc, doc string) (map[Engine]string, map[Engine]Stats) {
	t.Helper()
	outs := map[Engine]string{}
	stats := map[Engine]Stats{}
	for _, engine := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
		p := MustCompile(query, dtdSrc, Options{Engine: engine})
		out, st, err := p.ExecuteString(doc)
		if err != nil {
			t.Fatalf("%v failed: %v\nquery: %s", engine, err, query)
		}
		outs[engine] = out
		stats[engine] = st
	}
	return outs, stats
}

// TestDifferentialWorkloadSuite: all engines agree byte-for-byte on every
// workload case, across several seeds.
func TestDifferentialWorkloadSuite(t *testing.T) {
	for _, c := range workload.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				var doc bytes.Buffer
				if err := c.Gen(&doc, 20_000, seed); err != nil {
					t.Fatalf("gen: %v", err)
				}
				outs, stats := runEngines(t, c.Query, c.DTD, doc.String())
				if outs[EngineFlux] != outs[EngineNaive] {
					t.Fatalf("seed %d: flux and naive disagree:\nflux:  %s\nnaive: %s",
						seed, head(outs[EngineFlux]), head(outs[EngineNaive]))
				}
				if outs[EngineProjection] != outs[EngineNaive] {
					t.Fatalf("seed %d: projection and naive disagree", seed)
				}
				// Sanity: flux peak buffer never exceeds the naive
				// engine's whole-document peak.
				if stats[EngineFlux].PeakBufferBytes > stats[EngineNaive].PeakBufferBytes {
					t.Errorf("seed %d: flux buffered more than the whole document: %d > %d",
						seed, stats[EngineFlux].PeakBufferBytes, stats[EngineNaive].PeakBufferBytes)
				}
				// And projection never exceeds naive either.
				if stats[EngineProjection].PeakBufferBytes > stats[EngineNaive].PeakBufferBytes {
					t.Errorf("seed %d: projection bigger than naive", seed)
				}
			}
		})
	}
}

// TestDifferentialOptimizerVariants: optimized and unoptimized plans are
// semantically equivalent on every workload.
func TestDifferentialOptimizerVariants(t *testing.T) {
	for _, c := range workload.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var doc bytes.Buffer
			if err := c.Gen(&doc, 10_000, 7); err != nil {
				t.Fatal(err)
			}
			variants := []Options{
				{},
				{DisableOptimizer: true},
				{NoLoopMerging: true},
				{NoConditionalElimination: true},
				{NoBufferProjection: true},
			}
			var ref string
			for i, o := range variants {
				p := MustCompile(c.Query, c.DTD, o)
				out, _, err := p.ExecuteString(doc.String())
				if err != nil {
					t.Fatalf("variant %d: %v", i, err)
				}
				if i == 0 {
					ref = out
					continue
				}
				if out != ref {
					t.Errorf("variant %+v changed the result", o)
				}
			}
		})
	}
}

// TestDifferentialRandomDocuments: property-based differential testing —
// random schema-valid documents across all bib dialects must produce
// identical results on all engines.
func TestDifferentialRandomDocuments(t *testing.T) {
	queries := []string{
		workload.Q3,
		`<r>{ for $b in $ROOT/bib/book return <x>{ $b/@year }{ $b/title/text() }</x> }</r>`,
		`<r>{ for $b in $ROOT/bib/book return { if ($b/title = "data") then <hit/> else <miss/> } }</r>`,
		`<r>{ for $b in $ROOT/bib/book, $t in $b/title return <p>{ $t/text() }{ $b/author }</p> }</r>`,
	}
	for _, dialect := range []xmlgen.BibDialect{xmlgen.WeakBib, xmlgen.StrongBib, xmlgen.MixedBib} {
		d := dtd.MustParse(dialect.DTD())
		for seed := int64(0); seed < 12; seed++ {
			var doc bytes.Buffer
			if err := xmlgen.WriteRandom(&doc, d, xmlgen.RandomConfig{Seed: seed, MaxDepth: 4, MaxChildren: 6}); err != nil {
				t.Fatal(err)
			}
			for qi, q := range queries {
				name := fmt.Sprintf("dialect%d/seed%d/q%d", dialect, seed, qi)
				outs, _ := runEngines(t, q, dialect.DTD(), doc.String())
				if outs[EngineFlux] != outs[EngineNaive] || outs[EngineProjection] != outs[EngineNaive] {
					t.Fatalf("%s: engines disagree on\n%s\nflux:  %s\nproj:  %s\nnaive: %s",
						name, head(doc.String()), head(outs[EngineFlux]), head(outs[EngineProjection]), head(outs[EngineNaive]))
				}
			}
		}
	}
}

// TestDifferentialRandomAuction: random auction documents, join and
// non-join queries.
func TestDifferentialRandomAuction(t *testing.T) {
	d := dtd.MustParse(xmlgen.AuctionDTD)
	queries := []string{
		workload.ByName("xmark-q1").Query,
		workload.ByName("xmark-q8-join").Query,
		workload.ByName("xmark-q2-bidders").Query,
	}
	for seed := int64(0); seed < 8; seed++ {
		var doc bytes.Buffer
		if err := xmlgen.WriteRandom(&doc, d, xmlgen.RandomConfig{Seed: seed, MaxDepth: 5, MaxChildren: 5}); err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			outs, _ := runEngines(t, q, xmlgen.AuctionDTD, doc.String())
			if outs[EngineFlux] != outs[EngineNaive] || outs[EngineProjection] != outs[EngineNaive] {
				t.Fatalf("seed %d q%d: engines disagree", seed, qi)
			}
		}
	}
}

// TestFluxBufferAdvantageOnQ3 checks the paper's quantitative shape: on
// XMP Q3 over the weak DTD, flux buffers less than projection, which
// buffers less than naive.
func TestFluxBufferAdvantageOnQ3(t *testing.T) {
	var doc bytes.Buffer
	c := workload.ByName("xmp-q3-weak")
	if err := c.Gen(&doc, 200_000, 1); err != nil {
		t.Fatal(err)
	}
	_, stats := runEngines(t, c.Query, c.DTD, doc.String())
	flux := stats[EngineFlux].PeakBufferBytes
	proj := stats[EngineProjection].PeakBufferBytes
	naive := stats[EngineNaive].PeakBufferBytes
	// The weak-bib document consists almost entirely of titles and
	// authors, all of which Q3 touches — projection cannot prune much, so
	// it sits at the naive engine's level while flux stays at one book's
	// authors.
	if !(flux < proj && proj <= naive) {
		t.Errorf("expected flux < projection <= naive, got %d / %d / %d", flux, proj, naive)
	}
	// The flux peak is bounded by one book's authors, i.e. orders of
	// magnitude below the projected document.
	if flux*10 > proj {
		t.Errorf("flux buffer should be far below projection: %d vs %d", flux, proj)
	}
}

// TestProjectionAdvantageOnSelectiveQuery: on a document with much
// content the query never touches (auction sites, person lookup),
// projection prunes most of the tree while naive keeps all of it.
func TestProjectionAdvantageOnSelectiveQuery(t *testing.T) {
	var doc bytes.Buffer
	c := workload.ByName("xmark-q1")
	if err := c.Gen(&doc, 200_000, 1); err != nil {
		t.Fatal(err)
	}
	_, stats := runEngines(t, c.Query, c.DTD, doc.String())
	proj := stats[EngineProjection].PeakBufferBytes
	naive := stats[EngineNaive].PeakBufferBytes
	flux := stats[EngineFlux].PeakBufferBytes
	if proj*4 > naive {
		t.Errorf("projection should prune most of the auction site: %d vs %d", proj, naive)
	}
	if flux > proj {
		t.Errorf("flux should not exceed projection: %d vs %d", flux, proj)
	}
}

func head(s string) string {
	if len(s) > 300 {
		return s[:300] + "…"
	}
	return s
}

// TestWorkloadCatalogueConsistency: every case compiles on every engine
// and its generator emits schema-valid documents.
func TestWorkloadCatalogueConsistency(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range workload.Cases {
		if seen[c.Name] {
			t.Errorf("duplicate case name %s", c.Name)
		}
		seen[c.Name] = true
		d, err := ParseDTD(c.DTD)
		if err != nil {
			t.Fatalf("%s: bad DTD: %v", c.Name, err)
		}
		var doc bytes.Buffer
		if err := c.Gen(&doc, 5000, 1); err != nil {
			t.Fatalf("%s: gen: %v", c.Name, err)
		}
		if err := d.Validate(strings.NewReader(doc.String())); err != nil {
			t.Errorf("%s: generated document invalid: %v", c.Name, err)
		}
		for _, e := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
			q, err := ParseQuery(c.Query)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			if _, err := Compile(q, d, Options{Engine: e}); err != nil {
				t.Fatalf("%s on %v: compile: %v", c.Name, e, err)
			}
		}
	}
	if workload.ByName("xmp-q3-weak") == nil {
		t.Error("ByName lookup failed")
	}
	if workload.ByName("zzz") != nil {
		t.Error("ByName returned a ghost")
	}
}
