package fluxquery

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"fluxquery/internal/workload"
)

// Budget integration suite: the buffer manager (internal/bufmgr) wired
// through the public API. The differential tests assert the acceptance
// criterion of the subsystem — a budget below a query's natural peak
// changes *where* buffered bytes live (heap vs spill store, or when the
// feed advances), never *what* the query outputs.

// budgetRef runs the case unbudgeted and returns its output and stats.
func budgetRef(t *testing.T, c *workload.Case, doc []byte) (string, Stats) {
	t.Helper()
	p := MustCompile(c.Query, c.DTD, Options{})
	out, st, err := p.ExecuteString(string(doc))
	if err != nil {
		t.Fatalf("unbudgeted run: %v", err)
	}
	return out, st
}

// TestBudgetDifferentialPolicies: every workload case — the corpus and
// all 8 XMark streaming queries — produces byte-identical output
// unbudgeted, under BufferSpill with a budget at half the natural peak,
// and under BufferBackpressure. For the accrual (join) workloads, whose
// buffers grow with the document, spill mode must also actually spill
// while the reported live heap peak stays under the budget.
func TestBudgetDifferentialPolicies(t *testing.T) {
	for i := range workload.Cases {
		c := &workload.Cases[i]
		t.Run(c.Name, func(t *testing.T) {
			size := int64(60_000)
			if c.Join {
				size = 30_000
			}
			doc := genCorpusDoc(t, c, size)
			ref, refSt := budgetRef(t, c, doc)
			budget := refSt.PeakBufferBytes / 2
			if budget < 512 {
				// Nothing meaningful to bound (streaming query); still
				// check a budget does not disturb it.
				budget = 512
			}
			for _, pol := range []BufferPolicy{BufferSpill, BufferBackpressure} {
				p := MustCompile(c.Query, c.DTD, Options{
					BufferBudget:   budget,
					BufferPolicy:   pol,
					BufferSpillDir: t.TempDir(),
				})
				out, st, err := p.ExecuteString(string(doc))
				if err != nil {
					t.Fatalf("%v: %v", pol, err)
				}
				if out != ref {
					t.Fatalf("%v: output differs from unbudgeted run (budget %d, natural peak %d)",
						pol, budget, refSt.PeakBufferBytes)
				}
				if st.PeakBufferBytes != refSt.PeakBufferBytes {
					t.Errorf("%v: logical peak changed: %d vs %d (the paper metric must not depend on the budget)",
						pol, st.PeakBufferBytes, refSt.PeakBufferBytes)
				}
				if c.Join && pol == BufferSpill && refSt.PeakBufferBytes > 2048 {
					if st.SpilledBytes == 0 {
						t.Errorf("spill: accrual workload spilled nothing (budget %d, peak %d)",
							budget, refSt.PeakBufferBytes)
					}
					if st.PeakHeapBufferBytes > budget {
						t.Errorf("spill: live heap peak %d exceeds budget %d",
							st.PeakHeapBufferBytes, budget)
					}
					if st.RehydratedBytes == 0 {
						t.Errorf("spill: nothing rehydrated although output needed the buffers")
					}
				}
			}
		})
	}
}

// TestBudgetFailTypedError: a BufferFail plan over budget aborts with
// the typed error, matchable through the public alias.
func TestBudgetFailTypedError(t *testing.T) {
	c := workload.ByName("xmark-q8-join")
	doc := genCorpusDoc(t, c, 30_000)
	_, refSt := budgetRef(t, c, doc)
	p := MustCompile(c.Query, c.DTD, Options{
		BufferBudget: refSt.PeakBufferBytes / 2,
		BufferPolicy: BufferFail,
	})
	_, _, err := p.ExecuteString(string(doc))
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	// Well under budget: must succeed.
	p = MustCompile(c.Query, c.DTD, Options{
		BufferBudget: refSt.PeakBufferBytes * 2,
		BufferPolicy: BufferFail,
	})
	if _, _, err := p.ExecuteString(string(doc)); err != nil {
		t.Fatalf("under-budget run rejected: %v", err)
	}
}

// TestBudgetFailSharedPassIsolation is the acceptance scenario: in one
// shared pass, the greedy join plan exceeds the per-plan cap and fails
// with the typed error while its sibling plans complete with
// byte-identical output.
func TestBudgetFailSharedPassIsolation(t *testing.T) {
	greedy := workload.ByName("xmark-q8-join")
	lights := []*workload.Case{
		workload.ByName("xmark-q1"),
		workload.ByName("xmark-q13"),
		workload.ByName("xmark-q2-bidders"),
	}
	doc := genCorpusDoc(t, greedy, 60_000)

	_, greedySt := budgetRef(t, greedy, doc)
	var lightPeak int64
	lightRef := make([]string, len(lights))
	for i, c := range lights {
		out, st := budgetRef(t, c, doc)
		lightRef[i] = out
		if st.PeakBufferBytes > lightPeak {
			lightPeak = st.PeakBufferBytes
		}
	}
	budget := (lightPeak + greedySt.PeakBufferBytes) / 2
	if budget <= lightPeak || budget >= greedySt.PeakBufferBytes {
		t.Fatalf("workload does not separate: light peak %d, greedy peak %d",
			lightPeak, greedySt.PeakBufferBytes)
	}

	mgr := NewBufferManager(budget, BufferFail, "")
	defer mgr.Close()
	d, err := ParseDTD(greedy.DTD)
	if err != nil {
		t.Fatal(err)
	}
	set := NewStreamSet(d)
	set.SetBuffers(mgr)

	greedyReg, err := set.Register(MustCompile(greedy.Query, greedy.DTD, Options{}), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]*bytes.Buffer, len(lights))
	regs := make([]*StreamQuery, len(lights))
	for i, c := range lights {
		outs[i] = &bytes.Buffer{}
		if regs[i], err = set.Register(MustCompile(c.Query, c.DTD, Options{}), outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Run(bytes.NewReader(doc)); err != nil {
		t.Fatalf("stream disturbed by the over-budget plan: %v", err)
	}
	if _, err := greedyReg.Stats(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("greedy plan: got %v, want ErrBudgetExceeded", err)
	}
	for i := range lights {
		if _, err := regs[i].Stats(); err != nil {
			t.Errorf("sibling %s failed: %v", lights[i].Name, err)
		}
		if outs[i].String() != lightRef[i] {
			t.Errorf("sibling %s output corrupted by the rejected plan", lights[i].Name)
		}
	}
	if mgr.Metrics().Rejections == 0 {
		t.Error("manager recorded no rejection")
	}
}

// TestBudgetSpillSharedPass: all 8 XMark queries ride one budgeted
// shared pass under BufferSpill; every output is byte-identical to its
// solo unbudgeted run, the global reservation peak respects the budget,
// and no spill segment leaks.
func TestBudgetSpillSharedPass(t *testing.T) {
	var cases []*workload.Case
	for i := range workload.Cases {
		if strings.HasPrefix(workload.Cases[i].Name, "xmark-") {
			cases = append(cases, &workload.Cases[i])
		}
	}
	if len(cases) != 8 {
		t.Fatalf("expected 8 xmark queries, have %d", len(cases))
	}
	doc := genCorpusDoc(t, cases[0], 60_000)
	refs := make([]string, len(cases))
	var maxPeak int64
	for i, c := range cases {
		out, st := budgetRef(t, c, doc)
		refs[i] = out
		if st.PeakBufferBytes > maxPeak {
			maxPeak = st.PeakBufferBytes
		}
	}
	budget := maxPeak / 2
	mgr := NewBufferManager(budget, BufferSpill, t.TempDir())
	defer mgr.Close()

	d, err := ParseDTD(cases[0].DTD)
	if err != nil {
		t.Fatal(err)
	}
	set := NewStreamSet(d)
	set.SetBuffers(mgr)
	outs := make([]*bytes.Buffer, len(cases))
	regs := make([]*StreamQuery, len(cases))
	for i, c := range cases {
		outs[i] = &bytes.Buffer{}
		if regs[i], err = set.Register(MustCompile(c.Query, c.DTD, Options{}), outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for run := 0; run < 3; run++ {
		for _, o := range outs {
			o.Reset()
		}
		if err := set.Run(bytes.NewReader(doc)); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		for i := range cases {
			st, err := regs[i].Stats()
			if err != nil {
				t.Fatalf("run %d: %s: %v", run, cases[i].Name, err)
			}
			if outs[i].String() != refs[i] {
				t.Fatalf("run %d: %s output differs under budgeted shared pass", run, cases[i].Name)
			}
			if st.PeakHeapBufferBytes > st.PeakBufferBytes {
				t.Errorf("%s: heap peak %d above logical peak %d", cases[i].Name,
					st.PeakHeapBufferBytes, st.PeakBufferBytes)
			}
		}
	}
	mt := mgr.Metrics()
	if mt.SpilledBytes == 0 {
		t.Error("budgeted shared pass spilled nothing")
	}
	if mt.PeakReservedBytes > budget {
		t.Errorf("global reservation peak %d exceeds budget %d", mt.PeakReservedBytes, budget)
	}
	if mt.ReservedBytes != 0 {
		t.Errorf("reservations leak: %d bytes still held", mt.ReservedBytes)
	}
	if mt.SpillSegsLive != 0 {
		t.Errorf("spill segments leak: %d live", mt.SpillSegsLive)
	}
}

// TestBudgetChurnSpillingSharedPass registers and unregisters queries
// while budgeted shared passes spill (run under -race in CI): the churn
// must never corrupt a pinned query's output or leak reservations.
func TestBudgetChurnSpillingSharedPass(t *testing.T) {
	c := workload.ByName("xmark-q8-join")
	doc := genCorpusDoc(t, c, 30_000)
	ref, refSt := budgetRef(t, c, doc)
	mgr := NewBufferManager(refSt.PeakBufferBytes/2, BufferSpill, t.TempDir())
	defer mgr.Close()

	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}
	p := MustCompile(c.Query, c.DTD, Options{})
	set := NewStreamSet(d)
	set.SetBuffers(mgr)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg, err := set.Register(p, io.Discard)
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Microsecond)
				reg.Unregister()
			}
		}()
	}
	var pinnedOut bytes.Buffer
	pinned, err := set.Register(p, &pinnedOut)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		pinnedOut.Reset()
		if err := set.Run(bytes.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		if _, err := pinned.Stats(); err != nil {
			t.Fatalf("run %d: pinned query failed: %v", i, err)
		}
		if pinnedOut.String() != ref {
			t.Fatalf("run %d: pinned output corrupted under budgeted churn", i)
		}
	}
	close(stop)
	wg.Wait()
	if mt := mgr.Metrics(); mt.ReservedBytes != 0 || mt.SpillSegsLive != 0 {
		t.Errorf("leak after churn: %d bytes reserved, %d segments live",
			mt.ReservedBytes, mt.SpillSegsLive)
	}
}

// TestBudgetBackpressureConcurrentPasses: two over-budget passes sharing
// one BufferBackpressure manager throttle each other but both complete
// correctly (the gate rule guarantees progress).
func TestBudgetBackpressureConcurrentPasses(t *testing.T) {
	c := workload.ByName("xmark-q8-join")
	doc := genCorpusDoc(t, c, 30_000)
	ref, refSt := budgetRef(t, c, doc)
	mgr := NewBufferManager(refSt.PeakBufferBytes/2, BufferBackpressure, "")
	defer mgr.Close()
	p := MustCompile(c.Query, c.DTD, Options{Buffers: mgr})

	var wg sync.WaitGroup
	outs := make([]string, 4)
	errs := make([]error, 4)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = p.ExecuteString(string(doc))
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("backpressured passes deadlocked")
	}
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("pass %d: %v", i, errs[i])
		}
		if outs[i] != ref {
			t.Fatalf("pass %d output differs under backpressure", i)
		}
	}
	if mgr.Metrics().ReservedBytes != 0 {
		t.Error("reservations leak after concurrent passes")
	}
}

// TestPlanCloseReleasesOwnedManager: Plan.Close releases the spill
// store of a plan-owned manager (Options.BufferBudget) and is a no-op
// for shared or unbudgeted plans.
func TestPlanCloseReleasesOwnedManager(t *testing.T) {
	c := workload.ByName("xmark-q8-join")
	doc := genCorpusDoc(t, c, 30_000)
	_, refSt := budgetRef(t, c, doc)
	p := MustCompile(c.Query, c.DTD, Options{
		BufferBudget:   refSt.PeakBufferBytes / 2,
		BufferPolicy:   BufferSpill,
		BufferSpillDir: t.TempDir(),
	})
	if _, st, err := p.ExecuteString(string(doc)); err != nil || st.SpilledBytes == 0 {
		t.Fatalf("budgeted run: err=%v spilled=%d", err, st.SpilledBytes)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	// A closed plan-owned manager rejects further spilling runs.
	if _, _, err := p.ExecuteString(string(doc)); err == nil {
		t.Error("spilling run on a closed plan succeeded")
	}
	// Shared-manager and unbudgeted plans: Close is a no-op and the
	// shared manager stays usable.
	mgr := NewBufferManager(refSt.PeakBufferBytes/2, BufferSpill, t.TempDir())
	defer mgr.Close()
	shared := MustCompile(c.Query, c.DTD, Options{Buffers: mgr})
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := shared.ExecuteString(string(doc)); err != nil {
		t.Errorf("shared manager closed by plan Close: %v", err)
	}
	plain := MustCompile(c.Query, c.DTD, Options{})
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := plain.ExecuteString(string(doc)); err != nil {
		t.Errorf("unbudgeted plan unusable after Close: %v", err)
	}
}

// TestBudgetAbortReleasesEverything: a plan that dies mid-stream with
// spilled buffers must return its reservations and segments.
func TestBudgetAbortReleasesEverything(t *testing.T) {
	c := workload.ByName("xmark-q8-join")
	doc := genCorpusDoc(t, c, 30_000)
	_, refSt := budgetRef(t, c, doc)
	mgr := NewBufferManager(refSt.PeakBufferBytes/2, BufferSpill, t.TempDir())
	defer mgr.Close()
	p := MustCompile(c.Query, c.DTD, Options{Buffers: mgr})

	// Truncate the document mid-stream: the plan aborts with buffers
	// (some spilled) still live.
	_, _, err := p.ExecuteString(string(doc[:len(doc)/2]))
	if err == nil {
		t.Fatal("truncated document accepted")
	}
	if mt := mgr.Metrics(); mt.ReservedBytes != 0 || mt.SpillSegsLive != 0 {
		t.Errorf("abort leaked: %d bytes reserved, %d segments live",
			mt.ReservedBytes, mt.SpillSegsLive)
	}
}
