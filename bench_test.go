package fluxquery

// The benchmark harness regenerates every experiment of the evaluation
// (EXPERIMENTS.md): the demo paper cites the evaluation of its companion
// paper [8] — memory consumption and runtime of FluXQuery vs. two other
// engines over use-case queries and growing documents — and its §2/§3.1
// worked examples define the ablations. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics: peakB = buffer high-water mark in bytes (the
// paper's memory metric); docB = input document size.

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"fluxquery/internal/workload"
	"fluxquery/internal/xmlgen"
)

var engines = []Engine{EngineFlux, EngineProjection, EngineNaive}

// genDoc builds a deterministic document of roughly size bytes.
func genDoc(b *testing.B, c *workload.Case, size int64) []byte {
	b.Helper()
	var buf bytes.Buffer
	if err := c.Gen(&buf, size, 42); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchRun executes a compiled plan repeatedly over doc and reports the
// paper's metrics.
func benchRun(b *testing.B, p *Plan, doc []byte) {
	b.Helper()
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	var st Stats
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err = p.Execute(bytes.NewReader(doc), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.PeakBufferBytes), "peakB")
	b.ReportMetric(float64(len(doc)), "docB")
}

func benchCase(b *testing.B, caseName string, engine Engine, size int64, opts Options) {
	c := workload.ByName(caseName)
	if c == nil {
		b.Fatalf("unknown case %s", caseName)
	}
	doc := genDoc(b, c, size)
	opts.Engine = engine
	p := MustCompile(c.Query, c.DTD, opts)
	benchRun(b, p, doc)
}

var sweepSizes = []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20}

// BenchmarkE1MemoryVsSize — [8]'s memory-vs-document-size experiment:
// XMP Q3 on weak-DTD bibliographies. Read the peakB metric: flux stays
// flat (one book's authors) while projection/naive grow linearly.
func BenchmarkE1MemoryVsSize(b *testing.B) {
	for _, size := range sweepSizes {
		for _, e := range engines {
			b.Run(fmt.Sprintf("size=%dKB/engine=%s", size>>10, e), func(b *testing.B) {
				benchCase(b, "xmp-q3-weak", e, size, Options{})
			})
		}
	}
}

// BenchmarkE2RuntimeVsSize — [8]'s runtime-vs-document-size experiment:
// same workload, focus on ns/op, MB/s and allocations. Flux avoids tree
// construction entirely.
func BenchmarkE2RuntimeVsSize(b *testing.B) {
	for _, size := range sweepSizes {
		for _, e := range engines {
			b.Run(fmt.Sprintf("size=%dKB/engine=%s", size>>10, e), func(b *testing.B) {
				benchCase(b, "xmp-q3-weak", e, size, Options{})
			})
		}
	}
}

// BenchmarkE3QuerySuite — [8]'s all-queries table at a fixed document
// size (1 MB): the XMP use cases and paper micro-queries on all engines.
// Join workloads run at 256 KB: their nested-loop cost is quadratic on
// every engine, and the comparison shape is identical at any size.
func BenchmarkE3QuerySuite(b *testing.B) {
	for _, c := range workload.Cases {
		size := int64(1 << 20)
		if c.Join {
			size = 256 << 10
		}
		for _, e := range engines {
			b.Run(fmt.Sprintf("case=%s/engine=%s", c.Name, e), func(b *testing.B) {
				benchCase(b, c.Name, e, size, Options{})
			})
		}
	}
}

// BenchmarkE4DTDStrength — the paper's §2 worked example: the same query
// (XMP Q3) under the weak, mixed and strong DTD dialects. peakB drops
// from one book's authors (weak/mixed) to zero (strong).
func BenchmarkE4DTDStrength(b *testing.B) {
	const size = 1 << 20
	for _, name := range []string{"xmp-q3-weak", "xmp-q3-strong"} {
		b.Run("case="+name, func(b *testing.B) {
			benchCase(b, name, EngineFlux, size, Options{})
		})
	}
	// The mixed dialect is not a catalogue case for the baselines; build
	// it directly.
	b.Run("case=xmp-q3-mixed", func(b *testing.B) {
		cfg := xmlgen.BibConfig{Dialect: xmlgen.MixedBib, Seed: 42}
		cfg.Books = xmlgen.SizedBibBooks(cfg, size)
		var buf bytes.Buffer
		if err := xmlgen.WriteBib(&buf, cfg); err != nil {
			b.Fatal(err)
		}
		p := MustCompile(workload.Q3, xmlgen.MixedBibDTD, Options{})
		benchRun(b, p, buf.Bytes())
	})
}

// BenchmarkE5LoopMerging — §3.1's cardinality-constraint ablation: two
// consecutive loops over $book/publisher with and without the
// loop-merging rule.
func BenchmarkE5LoopMerging(b *testing.B) {
	const size = 1 << 20
	b.Run("optimized", func(b *testing.B) {
		benchCase(b, "paper-loop-merge", EngineFlux, size, Options{})
	})
	b.Run("no-loop-merging", func(b *testing.B) {
		benchCase(b, "paper-loop-merge", EngineFlux, size, Options{NoLoopMerging: true})
	})
}

// BenchmarkE6CondElim — §3.1's language-constraint ablation: the
// unsatisfiable author+editor conditional with and without elimination.
func BenchmarkE6CondElim(b *testing.B) {
	const size = 1 << 20
	b.Run("optimized", func(b *testing.B) {
		benchCase(b, "paper-conflict", EngineFlux, size, Options{})
	})
	b.Run("no-cond-elimination", func(b *testing.B) {
		benchCase(b, "paper-conflict", EngineFlux, size, Options{NoConditionalElimination: true})
	})
}

// BenchmarkE7XMark — [8]'s XMark experiment: auction-site queries
// (lookup, join, listing) across engines and sizes.
func BenchmarkE7XMark(b *testing.B) {
	for _, name := range []string{"xmark-q1", "xmark-q8-join", "xmark-q13", "xmark-q2-bidders"} {
		for _, size := range []int64{128 << 10, 512 << 10} {
			for _, e := range engines {
				b.Run(fmt.Sprintf("case=%s/size=%dKB/engine=%s", name, size>>10, e), func(b *testing.B) {
					benchCase(b, name, e, size, Options{})
				})
			}
		}
	}
}

// BenchmarkE8BufferScaling — the paper's §2 claim in isolation: peak
// buffer as a function of book count at fixed book size. flux's peakB is
// constant; the baselines grow with the count.
func BenchmarkE8BufferScaling(b *testing.B) {
	for _, books := range []int{100, 1000, 10000} {
		for _, e := range engines {
			b.Run(fmt.Sprintf("books=%d/engine=%s", books, e), func(b *testing.B) {
				var buf bytes.Buffer
				if err := xmlgen.WriteBib(&buf, xmlgen.BibConfig{Dialect: xmlgen.WeakBib, Books: books, Seed: 42}); err != nil {
					b.Fatal(err)
				}
				p := MustCompile(workload.Q3, xmlgen.WeakBibDTD, Options{Engine: e})
				benchRun(b, p, buf.Bytes())
			})
		}
	}
}

// BenchmarkE9BufferProjection — §3.2's design-choice ablation: the BDF
// projects buffered subtrees to the paths the handlers use ("improves on
// [10]"). With projection, only the isbn of each buffered info record is
// held; without it, the large blurbs enter the buffer too.
func BenchmarkE9BufferProjection(b *testing.B) {
	const size = 1 << 20
	b.Run("projected", func(b *testing.B) {
		benchCase(b, "bdf-projection", EngineFlux, size, Options{})
	})
	b.Run("full-buffers", func(b *testing.B) {
		benchCase(b, "bdf-projection", EngineFlux, size, Options{NoBufferProjection: true})
	})
}

// BenchmarkTokenizer measures the raw scanner throughput that bounds all
// engines.
func BenchmarkTokenizer(b *testing.B) {
	c := workload.ByName("xmp-q3-weak")
	doc := genDoc(b, c, 1<<20)
	d, err := ParseDTD(c.DTD)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Validate(bytes.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteParallel exercises the pooled per-execution state: one
// compiled Plan executed from many goroutines simultaneously. With the
// zero-copy pipeline the steady-state allocations per run come from the
// semantically required buffers (the BDF's dom nodes), not the I/O path.
func BenchmarkExecuteParallel(b *testing.B) {
	c := workload.ByName("xmp-q3-weak")
	doc := genDoc(b, c, 256<<10)
	p := MustCompile(c.Query, c.DTD, Options{})
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.Execute(bytes.NewReader(doc), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTokenizerParallel runs the validating scanner concurrently;
// the reader pool keeps window allocations at zero in steady state.
func BenchmarkTokenizerParallel(b *testing.B) {
	c := workload.ByName("xmp-q3-weak")
	doc := genDoc(b, c, 256<<10)
	d, err := ParseDTD(c.DTD)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := d.Validate(bytes.NewReader(doc)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures full pipeline compilation cost (parse,
// normalize, optimize, schedule, plan).
func BenchmarkCompile(b *testing.B) {
	c := workload.ByName("xmp-q3-weak")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q, err := ParseQuery(c.Query)
		if err != nil {
			b.Fatal(err)
		}
		d, err := ParseDTD(c.DTD)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Compile(q, d, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
