package fluxquery

import (
	"bytes"
	"sync"
	"testing"

	"fluxquery/internal/workload"
	"fluxquery/internal/xmlgen"
)

// TestConcurrentExecutions: a compiled Plan is immutable and may be
// executed from many goroutines simultaneously.
func TestConcurrentExecutions(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	var doc bytes.Buffer
	if err := c.Gen(&doc, 50_000, 9); err != nil {
		t.Fatal(err)
	}
	input := doc.String()
	for _, e := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
		p := MustCompile(c.Query, c.DTD, Options{Engine: e})
		ref, _, err := p.ExecuteString(input)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make(chan error, 16)
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, _, err := p.ExecuteString(input)
				if err != nil {
					errs <- err
					return
				}
				if out != ref {
					errs <- errDiffer
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("%v: concurrent execution failed: %v", e, err)
		}
	}
}

var errDiffer = &differError{}

type differError struct{}

func (*differError) Error() string { return "concurrent result differs" }

// TestBOMDocumentsAccepted: documents starting with a UTF-8 byte order
// mark parse and validate normally.
func TestBOMDocumentsAccepted(t *testing.T) {
	p := MustCompile(workload.Q3, xmlgen.WeakBibDTD, Options{})
	doc := "\xEF\xBB\xBF" + `<bib><book year="1"><title>T</title></book></bib>`
	out, _, err := p.ExecuteString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if out != `<results><result><title>T</title></result></results>` {
		t.Errorf("got %s", out)
	}
}
