package fluxquery

// Multi-query differential harness: a generator produces FAMILIES of
// overlapping queries — queries within a family loop over the same
// schema path, so their projection automata share prefixes and the
// dispatch trie interns them — with the family-reuse probability (the
// overlap ratio) under test control. Every generated set must produce,
// through a trie-dispatched shared pass at several pipeline widths,
// byte-identical output to N independent Plan.Execute runs. The CI
// multiquery-differential job runs these under -race at overlap ratios
// 0.1 and 0.9 (MULTIQUERY_OVERLAP selects one; unset runs both).

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"testing"

	"fluxquery/internal/workload"
	"fluxquery/internal/xmlgen"
)

// ogen generates overlapping queries. A family is a loop path (a chain
// of element names from the document root); with probability overlap a
// new query joins an existing family — same loop path, different body —
// otherwise it starts a fresh one.
type ogen struct {
	r        *rand.Rand
	s        *schemaInfo
	overlap  float64
	families [][]string
	seq      int
}

// chain picks a random element chain from the document root.
func (g *ogen) chain() []string {
	cur := g.s.d.Root
	chain := []string{cur}
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		kids := g.s.children(cur)
		if len(kids) == 0 {
			break
		}
		cur = kids[g.r.Intn(len(kids))]
		chain = append(chain, cur)
	}
	return chain
}

func (g *ogen) path() []string {
	if len(g.families) > 0 && g.r.Float64() < g.overlap {
		return g.families[g.r.Intn(len(g.families))]
	}
	c := g.chain()
	g.families = append(g.families, c)
	return c
}

func (g *ogen) query() string {
	g.seq++
	p := g.path()
	v := fmt.Sprintf("m%d", g.seq)
	// Bodies vary per member (reusing the random-query generator's body
	// machinery), so family members share dispatch paths but not output.
	qg := &qgen{r: g.r, s: g.s, next: g.seq * 100}
	body := qg.output(v, p[len(p)-1], 2)
	return fmt.Sprintf("<out>{ for $%s in $ROOT/%s return <rec>%s</rec> }</out>",
		v, strings.Join(p, "/"), body)
}

// overlapRatios returns the ratios to test: both by default, or the one
// selected by MULTIQUERY_OVERLAP (the CI job matrix sets 0.1 and 0.9).
func overlapRatios(t *testing.T) []float64 {
	switch os.Getenv("MULTIQUERY_OVERLAP") {
	case "":
		return []float64{0.1, 0.9}
	case "0.1":
		return []float64{0.1}
	case "0.9":
		return []float64{0.9}
	default:
		t.Fatalf("MULTIQUERY_OVERLAP must be 0.1 or 0.9, got %q", os.Getenv("MULTIQUERY_OVERLAP"))
		return nil
	}
}

// runSharedDifferential executes every plan independently (the
// reference), then runs all of them through shared passes in both
// dispatch modes at the given pipeline widths, asserting byte-identical
// per-plan output everywhere.
func runSharedDifferential(t *testing.T, dtdSrc string, queries []string, doc string, widths []int) {
	t.Helper()
	d, err := ParseDTD(dtdSrc)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]*Plan, len(queries))
	refs := make([]string, len(queries))
	for i, src := range queries {
		plans[i] = MustCompile(src, dtdSrc, Options{})
		out, _, err := plans[i].ExecuteString(doc)
		if err != nil {
			t.Fatalf("independent run of query %d: %v\n%s", i, err, src)
		}
		refs[i] = out
	}
	for _, mode := range []Dispatch{DispatchFanout, DispatchTrie} {
		for _, w := range widths {
			set := NewStreamSet(d)
			set.SetDispatch(mode)
			set.SetParallel(w)
			outs := make([]*bytes.Buffer, len(plans))
			regs := make([]*StreamQuery, len(plans))
			for i, p := range plans {
				outs[i] = &bytes.Buffer{}
				reg, err := set.Register(p, outs[i])
				if err != nil {
					t.Fatal(err)
				}
				regs[i] = reg
			}
			if err := set.Run(strings.NewReader(doc)); err != nil {
				t.Fatalf("mode=%v width=%d: %v", mode, w, err)
			}
			for i := range outs {
				if _, qerr := regs[i].Stats(); qerr != nil {
					t.Fatalf("mode=%v width=%d query %d failed in shared pass: %v\nquery: %s",
						mode, w, i, qerr, queries[i])
				}
				if got := outs[i].String(); got != refs[i] {
					t.Fatalf("mode=%v width=%d query %d: shared output differs from independent Execute\nquery: %s\ngot:  %.300s\nwant: %.300s",
						mode, w, i, queries[i], got, refs[i])
				}
			}
			if ds := set.LastDispatch(); ds.Mode != mode.String() {
				t.Errorf("mode=%v width=%d: LastDispatch mode %q", mode, w, ds.Mode)
			} else if mode == DispatchTrie && ds.Deliveries == 0 && len(plans) > 0 {
				t.Errorf("width=%d: trie pass delivered nothing: %+v", w, ds)
			}
		}
	}
}

// TestMultiQueryOverlapDifferential: randomized overlapping query sets
// over the bib schemas, trie-dispatched shared pass vs independent
// execution, at widths 1, 2 and 8.
func TestMultiQueryOverlapDifferential(t *testing.T) {
	for _, overlap := range overlapRatios(t) {
		overlap := overlap
		t.Run(fmt.Sprintf("overlap=%v", overlap), func(t *testing.T) {
			for _, dtdSrc := range []string{xmlgen.WeakBibDTD, xmlgen.StrongBibDTD} {
				s := newSchemaInfo(dtdSrc)
				g := &ogen{r: rand.New(rand.NewSource(int64(100 * overlap))), s: s, overlap: overlap}
				var queries []string
				for len(queries) < 16 {
					src := g.query()
					if _, err := ParseQuery(src); err != nil {
						t.Fatalf("generated query does not parse: %v\n%s", err, src)
					}
					queries = append(queries, src)
				}
				// Family reuse must actually have happened at high overlap.
				if overlap > 0.5 && len(g.families) >= len(queries) {
					t.Fatalf("overlap %v produced no shared families (%d families for %d queries)",
						overlap, len(g.families), len(queries))
				}
				for di := 0; di < 2; di++ {
					var doc bytes.Buffer
					if err := xmlgen.WriteRandom(&doc, s.d, xmlgen.RandomConfig{
						Seed: int64(di + 1), MaxDepth: 5, MaxChildren: 6,
					}); err != nil {
						t.Fatal(err)
					}
					runSharedDifferential(t, dtdSrc, queries, doc.String(), []int{1, 2, 8})
				}
			}
		})
	}
}

// TestMultiQueryXMarkTrieDifferential: all 8 XMark streaming queries
// ride trie-dispatched shared passes at widths 1, 2 and 8; every output
// must match the query's independent Execute.
func TestMultiQueryXMarkTrieDifferential(t *testing.T) {
	var xmark []*workload.Case
	for i := range workload.Cases {
		if strings.HasPrefix(workload.Cases[i].Name, "xmark-") {
			xmark = append(xmark, &workload.Cases[i])
		}
	}
	if len(xmark) != 8 {
		t.Fatalf("expected 8 xmark queries, got %d", len(xmark))
	}
	var doc bytes.Buffer
	if err := xmark[0].Gen(&doc, 100_000, 23); err != nil {
		t.Fatal(err)
	}
	queries := make([]string, len(xmark))
	for i, c := range xmark {
		queries[i] = c.Query
	}
	runSharedDifferential(t, xmark[0].DTD, queries, doc.String(), []int{1, 2, 8})
}

// TestMultiQueryTrieStatsFlat: registering the same overlapping family
// many times must not grow the trie: structure size is bound by the
// distinct paths, only fan-out lists widen.
func TestMultiQueryTrieStatsFlat(t *testing.T) {
	dtdSrc := xmlgen.WeakBibDTD
	d, err := ParseDTD(dtdSrc)
	if err != nil {
		t.Fatal(err)
	}
	doc := `<bib><book year="2000"><title>t</title><author>a</author></book></bib>`
	q := `<out>{ for $b in $ROOT/bib/book return <r>{ $b/title }</r> }</out>`
	nodes := func(n int) (int, int) {
		set := NewStreamSet(d)
		set.SetDispatch(DispatchTrie)
		p := MustCompile(q, dtdSrc, Options{})
		for i := 0; i < n; i++ {
			if _, err := set.Register(p, io.Discard); err != nil {
				t.Fatal(err)
			}
		}
		if err := set.RunString(doc); err != nil {
			t.Fatal(err)
		}
		ds := set.LastDispatch()
		return ds.TrieNodes, ds.MaxFanout
	}
	n1, _ := nodes(1)
	n100, f100 := nodes(100)
	if n100 != n1 {
		t.Errorf("100 identical registrations interned to %d nodes, single registration %d", n100, n1)
	}
	if f100 != 100 {
		t.Errorf("max fanout = %d, want 100", f100)
	}
}

// TestMultiQueryDeepPathTrieFlood: a plan whose loop path runs past the
// trie's depth cap still matches independent execution byte for byte —
// past shared.DepthCap the builder stops growing the product and floods
// the subtree to every still-active plan, which over-delivers (safe)
// instead of truncating.
func TestMultiQueryDeepPathTrieFlood(t *testing.T) {
	const depth = 70 // past shared.DepthCap (64)
	dtdSrc := `<!ELEMENT d (n)*>
<!ELEMENT n (n|t)*>
<!ELEMENT t (#PCDATA)>
`
	deep := "<out>{ for $x in $ROOT/d" + strings.Repeat("/n", depth) +
		" return <r>{ $x/t }</r> }</out>"
	shallow := `<out>{ for $x in $ROOT/d/n return <r>{ $x/t }</r> }</out>`
	var doc strings.Builder
	doc.WriteString("<d>")
	for i := 0; i < depth; i++ {
		doc.WriteString("<n>")
	}
	doc.WriteString("<n><t>deepest</t></n><t>leaf</t>")
	for i := 0; i < depth; i++ {
		doc.WriteString("</n>")
	}
	doc.WriteString("<n><t>top</t></n></d>")
	runSharedDifferential(t, dtdSrc, []string{deep, shallow}, doc.String(), []int{1, 2})
}
