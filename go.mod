module fluxquery

go 1.22
