package fluxquery

// Cancellation and fault-injection suite: the tentpole acceptance tests
// of the failure model. Cancellation must terminate a mid-stream pass
// promptly at any pipeline width with every riding plan reporting the
// context error (never a silently truncated result); injected faults at
// every site must be provably reachable and degrade per the model; and
// a cancelled or faulted pass must leave the process fully reusable —
// no leaked goroutines, no live spill segments, byte-identical output
// on the next clean run.

import (
	"bytes"
	"context"
	"errors"
	"io"
	goruntime "runtime"
	"testing"
	"time"

	"fluxquery/internal/faultinj"
	"fluxquery/internal/workload"
)

// slowReader throttles a document stream so a pass lasts long enough
// for a mid-stream cancel to land.
type slowReader struct {
	r     io.Reader
	chunk int
	delay time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	n, err := s.r.Read(p)
	time.Sleep(s.delay)
	return n, err
}

// settleGoroutines fails the test if the goroutine count does not
// return to (near) base within the deadline — the leak check behind
// "cancelled passes leave the process reusable".
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := goruntime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, base %d\n%s", n, base, buf[:goruntime.Stack(buf, true)])
		}
		goruntime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidStreamCancelDifferential: at widths 1 (sequential), 4 and 8,
// cancelling a context mid-pass terminates Run within 100ms, the pass
// and every riding plan report the context error, and a follow-up
// clean run over the same set produces output byte-identical to the
// sequential reference.
func TestMidStreamCancelDifferential(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	doc := genCorpusDoc(t, c, 120_000)
	refPlan := MustCompile(c.Query, c.DTD, Options{})
	ref, _, err := refPlan.ExecuteString(string(doc))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}

	base := goroutineBase()
	for _, width := range []int{1, 4, 8} {
		t.Run(widthName(width), func(t *testing.T) {
			set := NewStreamSet(d)
			set.SetParallel(width)
			const nq = 4
			outs := make([]*bytes.Buffer, nq)
			regs := make([]*StreamQuery, nq)
			for i := range outs {
				outs[i] = &bytes.Buffer{}
				p := MustCompile(c.Query, c.DTD, Options{})
				if regs[i], err = set.Register(p, outs[i]); err != nil {
					t.Fatal(err)
				}
			}

			// Cancel mid-pass: the throttled stream makes the pass last
			// hundreds of milliseconds; the timer fires well inside it.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var cancelledAt time.Time
			timer := time.AfterFunc(25*time.Millisecond, func() {
				cancelledAt = time.Now()
				cancel()
			})
			defer timer.Stop()
			err := set.RunContext(ctx, &slowReader{r: bytes.NewReader(doc), chunk: 2048, delay: time.Millisecond})
			latency := time.Since(cancelledAt)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pass error = %v, want context.Canceled", err)
			}
			if cancelledAt.IsZero() {
				t.Fatal("pass finished before the cancel landed; slow the reader down")
			}
			if latency > 100*time.Millisecond {
				t.Errorf("cancel-to-return latency %v, want <= 100ms", latency)
			}
			for i, reg := range regs {
				if _, rerr := reg.Stats(); !errors.Is(rerr, context.Canceled) {
					t.Errorf("query %d result = %v, want context.Canceled (no silent truncation)", i, rerr)
				}
			}

			// The set stays usable: a clean run is byte-identical to the
			// sequential single-plan reference for every query.
			for _, b := range outs {
				b.Reset()
			}
			if err := set.Run(bytes.NewReader(doc)); err != nil {
				t.Fatalf("clean run after cancel: %v", err)
			}
			for i, b := range outs {
				if b.String() != ref {
					t.Errorf("query %d output differs from reference after cancelled pass", i)
				}
			}
		})
	}
	settleGoroutines(t, base)
}

// TestDeadlineExpiryTerminatesPass: a context deadline behaves like a
// cancel — prompt termination with context.DeadlineExceeded on the
// pass and on every plan.
func TestDeadlineExpiryTerminatesPass(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	doc := genCorpusDoc(t, c, 120_000)
	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}
	set := NewStreamSet(d)
	set.SetParallel(4)
	reg, err := set.Register(MustCompile(c.Query, c.DTD, Options{}), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = set.RunContext(ctx, &slowReader{r: bytes.NewReader(doc), chunk: 2048, delay: time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("pass error = %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 200*time.Millisecond {
		t.Errorf("deadline expiry took %v to terminate the pass", el)
	}
	if _, rerr := reg.Stats(); !errors.Is(rerr, context.DeadlineExceeded) {
		t.Errorf("query result = %v, want context.DeadlineExceeded", rerr)
	}
}

// TestExecuteContextCancel: the single-plan entry point observes its
// context too (managed runs; the baseline engines are documented not
// to).
func TestExecuteContextCancel(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	doc := genCorpusDoc(t, c, 120_000)
	p := MustCompile(c.Query, c.DTD, Options{
		BufferBudget: 1 << 20,
		BufferPolicy: BufferSpill,
	})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(20*time.Millisecond, cancel)
	defer timer.Stop()
	_, err := p.ExecuteContext(ctx, &slowReader{r: bytes.NewReader(doc), chunk: 2048, delay: time.Millisecond}, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext error = %v, want context.Canceled", err)
	}
	// The plan stays usable after the cancelled run.
	if _, err := p.Execute(bytes.NewReader(doc), io.Discard); err != nil {
		t.Fatalf("clean run after cancel: %v", err)
	}
}

// TestCancelUnderBackpressure: cancellation reaches a pass parked in a
// buffer-manager backpressure gate wait — the scenario Bind's watcher
// goroutine exists for.
func TestCancelUnderBackpressure(t *testing.T) {
	c := workload.ByName("xmark-q8-join")
	doc := genCorpusDoc(t, c, 30_000)
	_, refSt := budgetRef(t, c, doc)
	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewBufferManager(refSt.PeakBufferBytes/2, BufferBackpressure, t.TempDir())
	defer mgr.Close()

	// holdSet keeps reservations live so the cancelled set's gate has a
	// reason to park.
	holdSet := NewStreamSet(d)
	holdSet.SetBuffers(mgr)
	if _, err := holdSet.Register(MustCompile(c.Query, c.DTD, Options{}), io.Discard); err != nil {
		t.Fatal(err)
	}
	hold := make(chan error, 1)
	go func() {
		hold <- holdSet.Run(&slowReader{r: bytes.NewReader(doc), chunk: 1024, delay: 2 * time.Millisecond})
	}()

	set := NewStreamSet(d)
	set.SetBuffers(mgr)
	if _, err := set.Register(MustCompile(c.Query, c.DTD, Options{}), io.Discard); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	if err := set.RunContext(ctx, bytes.NewReader(doc)); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("pass error = %v, want nil or context.Canceled", err)
	}
	if err := <-hold; err != nil {
		t.Fatalf("holding pass: %v", err)
	}
	if mt := mgr.Metrics(); mt.SpillSegsLive != 0 {
		t.Errorf("%d spill segments leaked", mt.SpillSegsLive)
	}
}

// goroutineBase samples the goroutine count after a settling pause, so
// straggler goroutines of earlier tests do not count against the leak
// checks.
func goroutineBase() int {
	goruntime.GC()
	time.Sleep(20 * time.Millisecond)
	return goruntime.NumGoroutine() + 2
}

func widthName(w int) string {
	return map[int]string{1: "sequential", 4: "parallel4", 8: "parallel8"}[w]
}

// TestFaultMatrix: every fault site × mode. A cell passes only when the
// site was provably reached (injection counter advanced), the pass
// degraded per the failure model (error and short-write faults surface
// as a pass error wrapping faultinj.ErrInjected; latency faults merely
// delay), no spill segments stayed live, and a clean follow-up run is
// byte-identical to the reference — the process is reusable after any
// injected failure.
func TestFaultMatrix(t *testing.T) {
	defer faultinj.Reset()
	h := newMatrixHarness(t)
	base := goroutineBase()
	for _, site := range faultinj.Sites() {
		for _, mode := range faultinj.Modes() {
			t.Run(site+"/"+mode.String(), func(t *testing.T) {
				faultinj.Reset()
				f := faultinj.Fault{Mode: mode}
				if mode == faultinj.ModeLatency {
					f.Latency = 100 * time.Microsecond
				}
				if err := faultinj.Arm(site, f); err != nil {
					t.Fatal(err)
				}
				err := h.run(t, site)
				injected := faultinj.Injected(site)
				faultinj.Reset()
				if injected == 0 {
					t.Fatalf("site %s never reached under its workload — the hook has gone dead", site)
				}
				if mode == faultinj.ModeLatency {
					if err != nil {
						t.Fatalf("latency fault failed the pass: %v", err)
					}
				} else {
					if err == nil {
						t.Fatalf("%s fault at %s was swallowed: pass succeeded", mode, site)
					}
					if !errors.Is(err, faultinj.ErrInjected) {
						t.Fatalf("pass error lost the injection chain: %v", err)
					}
				}
				if live := h.mgr.Metrics().SpillSegsLive; live != 0 {
					t.Errorf("%d spill segments live after the faulted pass", live)
				}
				h.verifyClean(t, site)
			})
		}
	}
	settleGoroutines(t, base)
}

// TestSpillTransientRetryEndToEnd: an exactly-once spill-write fault is
// absorbed by the store's retry loop — the budgeted pass succeeds with
// byte-identical output and the retry is visible in the manager
// metrics (flux_spill_retries_total's source).
func TestSpillTransientRetryEndToEnd(t *testing.T) {
	defer faultinj.Reset()
	h := newMatrixHarness(t)
	if err := faultinj.ArmSpec("spill.write:error:1"); err != nil {
		t.Fatal(err)
	}
	err := h.run(t, faultinj.SiteSpillWrite)
	faultinj.Reset()
	if err != nil {
		t.Fatalf("transient spill fault not absorbed: %v", err)
	}
	if got := h.mgr.Metrics().SpillRetries; got == 0 {
		t.Error("retry not counted in manager metrics")
	}
}

// TestTransientFirstReadErrorSurfaces: an exactly-once fault on the very
// first body read fails the pass. Regression test for the tokenizer's
// BOM probe discarding its fill error, which silently re-read the
// stream past a failed read — unlike spill I/O, an input-stream error
// has no retry contract, so it must surface, not be absorbed.
func TestTransientFirstReadErrorSurfaces(t *testing.T) {
	defer faultinj.Reset()
	h := newMatrixHarness(t)
	if err := faultinj.ArmSpec("body.read:error:1"); err != nil {
		t.Fatal(err)
	}
	err := h.run(t, faultinj.SiteBodyRead)
	injected := faultinj.Injected(faultinj.SiteBodyRead)
	faultinj.Reset()
	if !errors.Is(err, faultinj.ErrInjected) {
		t.Fatalf("one-shot first-read fault not surfaced: %v", err)
	}
	if injected != 1 {
		t.Fatalf("injected %d faults, want exactly 1", injected)
	}
	h.verifyClean(t, faultinj.SiteBodyRead)
}

// matrixHarness pre-builds one workload per fault site family: a
// budgeted spilling pass (spill.*), a pipelined shared pass (ring.*),
// and a pass reading through a faultinj.Reader (body.read).
type matrixHarness struct {
	mgr      *BufferManager
	spill    *Plan
	spillDoc []byte
	spillRef string

	ringSet  *StreamSet
	ringOuts []*bytes.Buffer
	ringDoc  []byte
	ringRef  string

	body    *Plan
	bodyDoc []byte
	bodyRef string
}

func newMatrixHarness(t *testing.T) *matrixHarness {
	t.Helper()
	h := &matrixHarness{}

	sc := workload.ByName("xmark-q8-join")
	h.spillDoc = genCorpusDoc(t, sc, 30_000)
	var refSt Stats
	h.spillRef, refSt = budgetRef(t, sc, h.spillDoc)
	h.mgr = NewBufferManager(refSt.PeakBufferBytes/2, BufferSpill, t.TempDir())
	t.Cleanup(func() { h.mgr.Close() })
	h.spill = MustCompile(sc.Query, sc.DTD, Options{Buffers: h.mgr})

	rc := workload.ByName("xmp-q3-weak")
	h.ringDoc = genCorpusDoc(t, rc, 60_000)
	var err error
	h.ringRef, _, err = MustCompile(rc.Query, rc.DTD, Options{}).ExecuteString(string(h.ringDoc))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseDTD(rc.DTD)
	if err != nil {
		t.Fatal(err)
	}
	h.ringSet = NewStreamSet(d)
	h.ringSet.SetParallel(4)
	for i := 0; i < 4; i++ {
		out := &bytes.Buffer{}
		h.ringOuts = append(h.ringOuts, out)
		if _, err := h.ringSet.Register(MustCompile(rc.Query, rc.DTD, Options{}), out); err != nil {
			t.Fatal(err)
		}
	}

	h.body = MustCompile(rc.Query, rc.DTD, Options{})
	h.bodyDoc = h.ringDoc
	h.bodyRef = h.ringRef
	return h
}

// run executes the workload covering the site once, returning the pass
// error.
func (h *matrixHarness) run(t *testing.T, site string) error {
	t.Helper()
	switch site {
	case faultinj.SiteSpillWrite, faultinj.SiteSpillRead:
		_, err := h.spill.Execute(bytes.NewReader(h.spillDoc), io.Discard)
		return err
	case faultinj.SiteRingToken, faultinj.SiteRingEvent:
		for _, b := range h.ringOuts {
			b.Reset()
		}
		return h.ringSet.Run(bytes.NewReader(h.ringDoc))
	case faultinj.SiteBodyRead:
		_, err := h.body.Execute(
			&faultinj.Reader{Site: faultinj.SiteBodyRead, R: bytes.NewReader(h.bodyDoc)},
			io.Discard)
		return err
	}
	t.Fatalf("no workload for site %q", site)
	return nil
}

// verifyClean runs the site's workload with all faults disarmed and
// checks byte-identical output against the pre-fault reference.
func (h *matrixHarness) verifyClean(t *testing.T, site string) {
	t.Helper()
	switch site {
	case faultinj.SiteSpillWrite, faultinj.SiteSpillRead:
		var out bytes.Buffer
		if _, err := h.spill.Execute(bytes.NewReader(h.spillDoc), &out); err != nil {
			t.Fatalf("clean rerun failed: %v", err)
		}
		if out.String() != h.spillRef {
			t.Error("clean rerun output differs from reference")
		}
	case faultinj.SiteRingToken, faultinj.SiteRingEvent:
		for _, b := range h.ringOuts {
			b.Reset()
		}
		if err := h.ringSet.Run(bytes.NewReader(h.ringDoc)); err != nil {
			t.Fatalf("clean rerun failed: %v", err)
		}
		for i, b := range h.ringOuts {
			if b.String() != h.ringRef {
				t.Errorf("clean rerun query %d differs from reference", i)
			}
		}
	case faultinj.SiteBodyRead:
		var out bytes.Buffer
		if _, err := h.body.Execute(bytes.NewReader(h.bodyDoc), &out); err != nil {
			t.Fatalf("clean rerun failed: %v", err)
		}
		if out.String() != h.bodyRef {
			t.Error("clean rerun output differs from reference")
		}
	}
}
