package fluxquery_test

import (
	"fmt"
	"strings"

	"fluxquery"
)

// The paper's §2 scenario: under a DTD that lets titles and authors
// interleave, the engine streams the titles and buffers only the authors
// of one book at a time.
func Example() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>`)
	query, _ := fluxquery.ParseQuery(`<results>{
  for $b in $ROOT/bib/book return
    <result>{ $b/title }{ $b/author }</result>
}</results>`)
	plan, _ := fluxquery.Compile(query, dtd, fluxquery.Options{})

	doc := `<bib><book><author>Knuth</author><title>TAOCP</title></book></bib>`
	out, stats, _ := plan.ExecuteString(doc)
	fmt.Println(out)
	fmt.Println("buffered at peak:", stats.PeakBufferBytes > 0)
	// Output:
	// <results><result><title>TAOCP</title><author>Knuth</author></result></results>
	// buffered at peak: true
}

// With the paper's Figure 1 DTD all titles precede all authors, so the
// same query runs with zero buffering.
func ExampleCompile_streaming() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	query, _ := fluxquery.ParseQuery(`<results>{
  for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result>
}</results>`)
	plan, _ := fluxquery.Compile(query, dtd, fluxquery.Options{})

	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>1</price></book></bib>`
	_, stats, _ := plan.ExecuteString(doc)
	fmt.Println("peak buffer bytes:", stats.PeakBufferBytes)
	// Output:
	// peak buffer bytes: 0
}

// ConstraintSummary shows the schema facts the optimizer derives from a
// content model.
func ExampleDTD_constraintSummary() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	summary := dtd.ConstraintSummary("book")
	fmt.Println(strings.Contains(summary, "card(publisher) = 1"))
	fmt.Println(strings.Contains(summary, "order: all title before all author"))
	fmt.Println(strings.Contains(summary, "conflict: never both author and editor"))
	// Output:
	// true
	// true
	// true
}
