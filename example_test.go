package fluxquery_test

import (
	"fmt"
	"strings"

	"fluxquery"
)

// The paper's §2 scenario: under a DTD that lets titles and authors
// interleave, the engine streams the titles and buffers only the authors
// of one book at a time.
func Example() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>`)
	query, _ := fluxquery.ParseQuery(`<results>{
  for $b in $ROOT/bib/book return
    <result>{ $b/title }{ $b/author }</result>
}</results>`)
	plan, _ := fluxquery.Compile(query, dtd, fluxquery.Options{})

	doc := `<bib><book><author>Knuth</author><title>TAOCP</title></book></bib>`
	out, stats, _ := plan.ExecuteString(doc)
	fmt.Println(out)
	fmt.Println("buffered at peak:", stats.PeakBufferBytes > 0)
	// Output:
	// <results><result><title>TAOCP</title><author>Knuth</author></result></results>
	// buffered at peak: true
}

// With the paper's Figure 1 DTD all titles precede all authors, so the
// same query runs with zero buffering.
func ExampleCompile_streaming() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	query, _ := fluxquery.ParseQuery(`<results>{
  for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result>
}</results>`)
	plan, _ := fluxquery.Compile(query, dtd, fluxquery.Options{})

	doc := `<bib><book><title>T</title><author>A</author><publisher>P</publisher><price>1</price></book></bib>`
	_, stats, _ := plan.ExecuteString(doc)
	fmt.Println("peak buffer bytes:", stats.PeakBufferBytes)
	// Output:
	// peak buffer bytes: 0
}

// ConstraintSummary shows the schema facts the optimizer derives from a
// content model.
func ExampleDTD_constraintSummary() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>`)
	summary := dtd.ConstraintSummary("book")
	fmt.Println(strings.Contains(summary, "card(publisher) = 1"))
	fmt.Println(strings.Contains(summary, "order: all title before all author"))
	fmt.Println(strings.Contains(summary, "conflict: never both author and editor"))
	// Output:
	// true
	// true
	// true
}

// Schema-driven stream projection: the plan's FluX handlers and buffer
// description forest prove which document paths the query can touch; with
// ProjectionFast (the default) everything else is bulk-skipped in the
// tokenizer without ever materializing an event. Output is byte-identical
// to an unprojected run; the Scan* stats show what was pruned.
func ExampleOptions_projection() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title,info)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT info (isbn,blurb)>
<!ELEMENT isbn (#PCDATA)>
<!ELEMENT blurb (#PCDATA)>`)
	query, _ := fluxquery.ParseQuery(`<titles>{
  for $b in $ROOT/bib/book return { $b/title }
}</titles>`)

	doc := `<bib><book><title>TAOCP</title><info><isbn>0-201</isbn>` +
		`<blurb>a very long blurb the query never reads</blurb></info></book></bib>`

	fast, _ := fluxquery.Compile(query, dtd, fluxquery.Options{Projection: fluxquery.ProjectionFast})
	out, stats, _ := fast.ExecuteString(doc)
	fmt.Println(out)
	fmt.Println("subtrees pruned:", stats.ScanSubtreesSkipped)
	fmt.Println("bytes bulk-skipped:", stats.ScanBytesSkipped > 0)

	// Projection never changes the result: an unprojected plan agrees.
	off, _ := fluxquery.Compile(query, dtd, fluxquery.Options{Projection: fluxquery.ProjectionOff})
	same, _, _ := off.ExecuteString(doc)
	fmt.Println("identical to unprojected run:", out == same)
	// Output:
	// <titles><title>TAOCP</title></titles>
	// subtrees pruned: 1
	// bytes bulk-skipped: true
	// identical to unprojected run: true
}

// Many queries, one stream: a StreamSet evaluates every registered plan
// over a document in a single tokenize+validate pass.
func ExampleStreamSet() {
	dtd, _ := fluxquery.ParseDTD(`
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>`)
	compile := func(src string) *fluxquery.Plan {
		q, _ := fluxquery.ParseQuery(src)
		p, _ := fluxquery.Compile(q, dtd, fluxquery.Options{})
		return p
	}

	set := fluxquery.NewStreamSet(dtd)
	var titles, authors strings.Builder
	t, _ := set.Register(compile(`<titles>{ for $b in $ROOT/bib/book return { $b/title } }</titles>`), &titles)
	a, _ := set.Register(compile(`<authors>{ for $b in $ROOT/bib/book return { $b/author } }</authors>`), &authors)

	doc := `<bib><book><title>TAOCP</title><author>Knuth</author></book></bib>`
	_ = set.RunString(doc) // one shared pass for both plans

	fmt.Println(titles.String())
	fmt.Println(authors.String())
	st, _ := t.Stats()
	st2, _ := a.Stats()
	fmt.Println("same events for both plans:", st.Events == st2.Events)
	// Output:
	// <titles><title>TAOCP</title></titles>
	// <authors><author>Knuth</author></authors>
	// same events for both plans: true
}
