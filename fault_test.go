package fluxquery

// Failure injection: engines must fail cleanly (no panics, no silent
// truncation) on broken inputs and broken outputs.

import (
	"io"
	"strings"
	"testing"

	"fluxquery/internal/xmlgen"
)

// failingWriter fails after n bytes.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, io.ErrClosedPipe
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), nil
}

// truncatedReader yields only the first n bytes of s.
type truncatedReader struct {
	s string
	n int
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	if t.n >= len(t.s) {
		return 0, io.EOF
	}
	k := copy(p, t.s[t.n:])
	t.n += k
	if t.n > 200 { // truncate hard after 200 bytes
		return k, io.ErrUnexpectedEOF
	}
	return k, nil
}

const faultDoc = `<bib><book year="1"><title>One</title><author>A</author></book><book year="2"><title>Two</title></book></bib>`

func TestWriterFailureSurfaces(t *testing.T) {
	for _, e := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
		p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{Engine: e})
		_, err := p.Execute(strings.NewReader(faultDoc), &failingWriter{n: 10})
		if err == nil {
			t.Errorf("%v: writer failure not reported", e)
		}
	}
}

func TestTruncatedInputSurfaces(t *testing.T) {
	long := `<bib>` + strings.Repeat(`<book year="1"><title>T</title></book>`, 50) + `</bib>`
	for _, e := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
		p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{Engine: e})
		_, _, err := func() (string, Stats, error) {
			var sb strings.Builder
			st, err := p.Execute(&truncatedReader{s: long}, &sb)
			return sb.String(), st, err
		}()
		if err == nil {
			t.Errorf("%v: truncated input not reported", e)
		}
	}
}

func TestMalformedDocuments(t *testing.T) {
	docs := []struct{ name, doc string }{
		{"tag mismatch", `<bib><book year="1"><title>T</book></title></bib>`},
		{"unclosed root", `<bib><book year="1"></book>`},
		{"stray content", `<bib></bib><extra/>`},
		{"undeclared element", `<bib><pamphlet/></bib>`},
		{"missing required attr", `<bib><book><title>T</title></book></bib>`},
		{"wrong root", `<library></library>`},
		{"empty input", ``},
		{"not xml", `hello world`},
	}
	for _, e := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
		for _, c := range docs {
			p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{Engine: e})
			if _, _, err := p.ExecuteString(c.doc); err == nil {
				t.Errorf("%v accepted %s: %q", e, c.name, c.doc)
			}
		}
	}
}

// TestPlansAreReusable: one plan can execute many documents, and a failed
// execution does not poison the plan.
func TestPlansAreReusable(t *testing.T) {
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	good, _, err := p.ExecuteString(faultDoc)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ExecuteString(`<bib><broken`); err == nil {
		t.Fatal("broken doc accepted")
	}
	again, _, err := p.ExecuteString(faultDoc)
	if err != nil {
		t.Fatal(err)
	}
	if again != good {
		t.Error("plan state leaked across executions")
	}
}

// TestDeeplyNestedDocument: recursion-safe handling of deep trees on all
// engines (the flux runtime recurses per process-stream scope, not per
// element, so depth stresses the tokenizer and validators).
func TestDeeplyNestedDocument(t *testing.T) {
	const depth = 2000
	dtdSrc := `<!ELEMENT n (n?)>`
	doc := strings.Repeat("<n>", depth) + strings.Repeat("</n>", depth)
	d, err := ParseDTD(dtdSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`<r>{ for $x in $ROOT/n return <hit/> }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineFlux, EngineNaive} {
		p, err := Compile(q, d, Options{Engine: e})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if _, err := p.Execute(strings.NewReader(doc), &sb); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if sb.String() != "<r><hit/></r>" {
			t.Errorf("%v: got %s", e, sb.String())
		}
	}
}

// TestHugeTextNode: multi-megabyte text content in one node.
func TestHugeTextNode(t *testing.T) {
	big := strings.Repeat("x", 4<<20)
	doc := `<bib><book year="1"><title>` + big + `</title></book></bib>`
	p := MustCompile(`<r>{ for $b in $ROOT/bib/book return { $b/title/text() } }</r>`, xmlgen.WeakBibDTD, Options{})
	out, st, err := p.ExecuteString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(big)+len("<r></r>") {
		t.Errorf("output length %d", len(out))
	}
	if st.PeakBufferBytes != 0 {
		t.Errorf("streaming text emission must not buffer, peak = %d", st.PeakBufferBytes)
	}
}

func TestDTDFromDocument(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!DOCTYPE bib [
<!ELEMENT bib (book)*>
<!ELEMENT book (title)>
<!ELEMENT title (#PCDATA)>
]>
<bib><book><title>T</title></book></bib>`
	d, err := DTDFromDocument(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != "bib" {
		t.Errorf("root = %s", d.Root())
	}
	if _, err := DTDFromDocument(strings.NewReader(`<bib/>`)); err == nil {
		t.Error("document without DOCTYPE accepted")
	}
	if _, err := DTDFromDocument(strings.NewReader(``)); err == nil {
		t.Error("empty document accepted")
	}
}
