package fluxquery

// Property-based differential testing with random QUERIES: a generator
// produces schema-typed queries of the supported fragment over the bib
// and auction schemas; every query must compile on all engines and yield
// byte-identical results on randomly generated valid documents. This
// exercises the scheduler's case analysis (stream vs on-first vs on-end),
// the BDF and the runtime far beyond the hand-written cases.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fluxquery/internal/dtd"
	"fluxquery/internal/xmlgen"
)

// schemaInfo gives the query generator the vocabulary of a DTD.
type schemaInfo struct {
	dtdSrc string
	d      *dtd.DTD
}

func newSchemaInfo(src string) *schemaInfo {
	return &schemaInfo{dtdSrc: src, d: dtd.MustParse(src)}
}

func (s *schemaInfo) children(elem string) []string {
	e := s.d.Element(elem)
	if e == nil {
		return nil
	}
	return e.Automaton().Alphabet()
}

func (s *schemaInfo) attrs(elem string) []string {
	e := s.d.Element(elem)
	if e == nil {
		return nil
	}
	var out []string
	for _, a := range e.Atts {
		out = append(out, a.Name)
	}
	return out
}

func (s *schemaInfo) hasText(elem string) bool {
	e := s.d.Element(elem)
	return e != nil && e.HasPCData()
}

// qgen generates random queries.
type qgen struct {
	r    *rand.Rand
	s    *schemaInfo
	next int
}

func (g *qgen) fresh() string {
	g.next++
	return fmt.Sprintf("q%d", g.next)
}

// output generates an output expression in the scope of var v bound to
// element type elem.
func (g *qgen) output(v, elem string, depth int) string {
	kids := g.s.children(elem)
	choices := []func() string{
		func() string { return fmt.Sprintf("<c%d/>", g.r.Intn(3)) },
		func() string { return `"lit"` },
	}
	if g.s.hasText(elem) {
		choices = append(choices, func() string { return fmt.Sprintf("{ $%s/text() }", v) })
	}
	for _, a := range g.s.attrs(elem) {
		a := a
		choices = append(choices, func() string { return fmt.Sprintf("{ $%s/@%s }", v, a) })
	}
	if len(kids) > 0 {
		// Path copy of a random child.
		choices = append(choices, func() string {
			return fmt.Sprintf("{ $%s/%s }", v, kids[g.r.Intn(len(kids))])
		})
	}
	if depth > 0 && len(kids) > 0 {
		// Loop over a child with a nested body.
		choices = append(choices, func() string {
			child := kids[g.r.Intn(len(kids))]
			cv := g.fresh()
			return fmt.Sprintf("{ for $%s in $%s/%s return <w>%s</w> }", cv, v, child, g.output(cv, child, depth-1))
		})
		// Conditional over scope data.
		choices = append(choices, func() string {
			return fmt.Sprintf("{ if (%s) then <t>%s</t> else <e/> }", g.cond(v, elem), g.output(v, elem, depth-1))
		})
		// Wrapped sequence.
		choices = append(choices, func() string {
			return fmt.Sprintf("<s>%s%s</s>", g.output(v, elem, depth-1), g.output(v, elem, depth-1))
		})
	}
	return choices[g.r.Intn(len(choices))]()
}

func (g *qgen) cond(v, elem string) string {
	kids := g.s.children(elem)
	var atoms []string
	for _, k := range kids {
		atoms = append(atoms,
			fmt.Sprintf(`$%s/%s = "data"`, v, k),
			fmt.Sprintf("exists($%s/%s)", v, k))
	}
	for _, a := range g.s.attrs(elem) {
		atoms = append(atoms, fmt.Sprintf(`$%s/@%s != "zzz"`, v, a))
	}
	if g.s.hasText(elem) {
		atoms = append(atoms, fmt.Sprintf(`$%s/text() = "data"`, v))
	}
	if len(atoms) == 0 {
		return "exists($" + v + "/nothing)"
	}
	a := atoms[g.r.Intn(len(atoms))]
	if g.r.Intn(3) == 0 && len(atoms) > 1 {
		b := atoms[g.r.Intn(len(atoms))]
		op := []string{"and", "or"}[g.r.Intn(2)]
		return fmt.Sprintf("(%s %s %s)", a, op, b)
	}
	return a
}

// query generates a whole query: a constructor around a loop over the
// document root's records.
func (g *qgen) query() string {
	root := g.s.d.Root
	v := g.fresh()
	return fmt.Sprintf("<out>{ for $%s in $ROOT/%s return <rec>%s</rec> }</out>",
		v, root, g.output(v, root, 3))
}

func testRandomQueries(t *testing.T, dtdSrc string, queries, docs int, baseSeed int64) {
	t.Helper()
	s := newSchemaInfo(dtdSrc)
	d := s.d
	// Pre-generate documents.
	var docsBuf []string
	for i := 0; i < docs; i++ {
		var buf bytes.Buffer
		if err := xmlgen.WriteRandom(&buf, d, xmlgen.RandomConfig{Seed: baseSeed + int64(i), MaxDepth: 5, MaxChildren: 5}); err != nil {
			t.Fatal(err)
		}
		docsBuf = append(docsBuf, buf.String())
	}
	for qi := 0; qi < queries; qi++ {
		g := &qgen{r: rand.New(rand.NewSource(baseSeed + int64(1000+qi))), s: s}
		src := g.query()
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("generated query does not parse: %v\n%s", err, src)
		}
		dd, _ := ParseDTD(dtdSrc)
		plans := map[Engine]*Plan{}
		for _, e := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
			p, err := Compile(q, dd, Options{Engine: e})
			if err != nil {
				t.Fatalf("query %d does not compile on %v: %v\n%s", qi, e, err, src)
			}
			plans[e] = p
		}
		for di, doc := range docsBuf {
			var ref string
			for _, e := range []Engine{EngineNaive, EngineFlux, EngineProjection} {
				out, _, err := plans[e].ExecuteString(doc)
				if err != nil {
					t.Fatalf("query %d doc %d engine %v: %v\nquery: %s", qi, di, e, err, src)
				}
				if e == EngineNaive {
					ref = out
					continue
				}
				if out != ref {
					t.Fatalf("query %d doc %d: %v differs from naive\nquery: %s\ndoc: %s\n%v: %s\nnaive: %s",
						qi, di, e, src, clip(doc), e, clip(out), clip(ref))
				}
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "…"
	}
	return s
}

func TestRandomQueriesWeakBib(t *testing.T) {
	testRandomQueries(t, xmlgen.WeakBibDTD, 60, 4, 1)
}

func TestRandomQueriesStrongBib(t *testing.T) {
	testRandomQueries(t, xmlgen.StrongBibDTD, 60, 4, 2)
}

func TestRandomQueriesMixedBib(t *testing.T) {
	testRandomQueries(t, xmlgen.MixedBibDTD, 40, 4, 3)
}

func TestRandomQueriesInfoBib(t *testing.T) {
	testRandomQueries(t, xmlgen.InfoBibDTD, 40, 4, 4)
}

func TestRandomQueriesAuction(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	testRandomQueries(t, xmlgen.AuctionDTD, 30, 3, 5)
}

// TestRandomQueriesSafety: every scheduled random query passes the
// safety checker (the scheduler must be safe by construction).
func TestRandomQueriesSafety(t *testing.T) {
	for _, src := range []string{xmlgen.WeakBibDTD, xmlgen.StrongBibDTD, xmlgen.MixedBibDTD} {
		s := newSchemaInfo(src)
		dd, _ := ParseDTD(src)
		for qi := 0; qi < 40; qi++ {
			g := &qgen{r: rand.New(rand.NewSource(int64(qi))), s: s}
			qsrc := g.query()
			q, err := ParseQuery(qsrc)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Compile(q, dd, Options{})
			if err != nil {
				t.Fatalf("compile: %v\n%s", err, qsrc)
			}
			// Compile runs the safety checker internally; additionally the
			// flux form must print and mention process-stream.
			if !strings.Contains(p.FluxString(), "process-stream") {
				t.Fatalf("no process-stream in scheduled query:\n%s", qsrc)
			}
		}
	}
}
