// Bibliography: the W3C XMP use-case workload on all three engines.
//
// The example generates a bibliography document (the paper's application
// domain), runs several use-case queries on the flux, projection and
// naive engines, verifies they agree and prints the comparison table the
// paper's evaluation is about: runtime and peak buffer per engine.
//
// Run with: go run ./examples/bibliography [-books 2000]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"time"

	"fluxquery"
)

const weakBibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ATTLIST book year CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

var queries = []struct{ name, text string }{
	{"XMP-Q3 (group titles+authors)", `<results>{
  for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result>
}</results>`},
	{"XMP-Q2 (flat pairs)", `<results>{
  for $b in $ROOT/bib/book, $t in $b/title, $a in $b/author
  return <result>{ $t }{ $a }</result>
}</results>`},
	{"recent books (where on @year)", `<results>{
  for $b in $ROOT/bib/book where $b/@year > 2000 return <hit>{ $b/title }</hit>
}</results>`},
}

// writeBib emits a random bibliography valid for the weak DTD: titles and
// authors interleaved, which is exactly the case where buffering
// discipline matters.
func writeBib(w io.Writer, books int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	fmt.Fprint(w, "<bib>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(w, `<book year="%d">`, 1985+r.Intn(25))
		items := []string{fmt.Sprintf("<title>Streaming Systems Vol. %d</title>", i)}
		for a := 0; a < r.Intn(4); a++ {
			items = append(items, fmt.Sprintf("<author>Author %d.%d</author>", i, a))
		}
		if r.Intn(2) == 0 {
			items = append(items, fmt.Sprintf("<title>Second Edition %d</title>", i))
		}
		r.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
		for _, it := range items {
			fmt.Fprint(w, it)
		}
		fmt.Fprint(w, "</book>")
	}
	fmt.Fprint(w, "</bib>")
}

func main() {
	books := flag.Int("books", 2000, "number of books to generate")
	flag.Parse()

	var doc bytes.Buffer
	writeBib(&doc, *books, 7)
	fmt.Printf("document: %d books, %d bytes\n\n", *books, doc.Len())

	dtd, err := fluxquery.ParseDTD(weakBibDTD)
	if err != nil {
		log.Fatal(err)
	}
	engines := []fluxquery.Engine{fluxquery.EngineFlux, fluxquery.EngineProjection, fluxquery.EngineNaive}

	for _, qc := range queries {
		fmt.Println("==", qc.name)
		q, err := fluxquery.ParseQuery(qc.text)
		if err != nil {
			log.Fatal(err)
		}
		var reference string
		fmt.Printf("  %-11s %12s %14s %12s\n", "engine", "time", "peak buffer", "output")
		for _, e := range engines {
			plan, err := fluxquery.Compile(q, dtd, fluxquery.Options{Engine: e})
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			out, st, err := plan.ExecuteString(doc.String())
			if err != nil {
				log.Fatal(err)
			}
			if reference == "" {
				reference = out
			} else if out != reference {
				log.Fatalf("%v produced a different result!", e)
			}
			fmt.Printf("  %-11s %12s %13dB %11dB\n",
				e, time.Since(start).Round(time.Microsecond), st.PeakBufferBytes, st.OutputBytes)
		}
		fmt.Println("  all engines agree ✓")
		fmt.Println()
	}
}
