// Auction: an XMark-style streaming scenario with a join.
//
// The example generates a small auction site document, then runs two
// queries on the flux engine:
//
//  1. a per-auction extraction that streams with zero buffering thanks to
//     the strict element order of the auction schema, and
//  2. a buyer/person join, which is inherently buffering — the engine
//     buffers only the projected person and closed_auction paths the join
//     touches (BDF projection), not the whole document.
//
// Run with: go run ./examples/auction
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"fluxquery"
)

const auctionDTD = `
<!ELEMENT site (people,closed_auctions)>
<!ELEMENT people (person)*>
<!ELEMENT person (name,emailaddress)>
<!ATTLIST person id CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT emailaddress (#PCDATA)>
<!ELEMENT closed_auctions (closed_auction)*>
<!ELEMENT closed_auction (buyer,itemref,price)>
<!ELEMENT buyer (#PCDATA)>
<!ELEMENT itemref (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const extraction = `<sales>{
  for $c in $ROOT/site/closed_auctions/closed_auction
  return <sale>{ $c/itemref/text() }: { $c/price/text() }</sale>
}</sales>`

const join = `<purchases>{
  for $p in $ROOT/site/people/person, $c in $ROOT/site/closed_auctions/closed_auction
  where $c/buyer = $p/@id
  return <purchase><who>{ $p/name/text() }</who><price>{ $c/price/text() }</price></purchase>
}</purchases>`

func writeSite(w *bytes.Buffer, persons, auctions int, seed int64) {
	r := rand.New(rand.NewSource(seed))
	w.WriteString("<site><people>")
	for i := 0; i < persons; i++ {
		fmt.Fprintf(w, `<person id="p%d"><name>Person %d</name><emailaddress>p%d@example.org</emailaddress></person>`, i, i, i)
	}
	w.WriteString("</people><closed_auctions>")
	for i := 0; i < auctions; i++ {
		fmt.Fprintf(w, `<closed_auction><buyer>p%d</buyer><itemref>item%d</itemref><price>%d.00</price></closed_auction>`,
			r.Intn(persons), i, 10+r.Intn(490))
	}
	w.WriteString("</closed_auctions></site>")
}

func main() {
	var doc bytes.Buffer
	writeSite(&doc, 50, 200, 3)

	dtd, err := fluxquery.ParseDTD(auctionDTD)
	if err != nil {
		log.Fatal(err)
	}

	run := func(title, q string) {
		plan, err := fluxquery.Compile(mustQuery(q), dtd, fluxquery.Options{})
		if err != nil {
			log.Fatal(err)
		}
		out, st, err := plan.ExecuteString(doc.String())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", title)
		fmt.Printf("peak buffer %dB of a %dB document; %d subtrees skipped\n",
			st.PeakBufferBytes, doc.Len(), st.SkippedSubtrees)
		fmt.Printf("first 200 bytes of output: %.200s…\n\n", out)
	}

	run("per-auction extraction (streams, zero buffer)", extraction)
	run("buyer/person join (buffers only projected paths)", join)

	// Show where the join's buffers come from.
	plan, _ := fluxquery.Compile(mustQuery(join), dtd, fluxquery.Options{})
	fmt.Println("== join explain (excerpt: buffer description forest) ==")
	explain := plan.Explain()
	if i := indexOf(explain, "== buffer description forest =="); i >= 0 {
		fmt.Println(explain[i:])
	}
}

func mustQuery(s string) *fluxquery.Query {
	q, err := fluxquery.ParseQuery(s)
	if err != nil {
		log.Fatal(err)
	}
	return q
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
