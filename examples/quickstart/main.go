// Quickstart: the paper's §2 running example end to end.
//
// It compiles XMP use case Q3 against the weak bibliography DTD, prints
// the scheduled FluX query (titles stream, authors are buffered behind
// on-first past(title,author)), executes it over a document stream and
// reports the buffer statistics.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fluxquery"
)

const bibDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

// XMP Q3 — "list the title(s) and authors of each book, grouped inside a
// result element".
const query = `<results>{
  for $b in $ROOT/bib/book return
    <result>{ $b/title }{ $b/author }</result>
}</results>`

const document = `<bib>
  <book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book>
  <book><author>Knuth</author><title>TAOCP</title></book>
</bib>`

func main() {
	dtd, err := fluxquery.ParseDTD(bibDTD)
	if err != nil {
		log.Fatal(err)
	}
	q, err := fluxquery.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fluxquery.Compile(q, dtd, fluxquery.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("— scheduled FluX query —")
	fmt.Println(plan.FluxString())

	out, stats, err := plan.ExecuteString(document)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— result stream —")
	fmt.Println(out)
	fmt.Println()
	fmt.Printf("peak buffer: %d bytes (the authors of one book at a time)\n", stats.PeakBufferBytes)
	fmt.Printf("events: %d, handler firings: %d, output: %d bytes\n",
		stats.Events, stats.HandlerFirings, stats.OutputBytes)
}
