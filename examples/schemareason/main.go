// Schemareason: the schema analyses behind FluXQuery's optimizer.
//
// The example prints, for the paper's two bibliography DTDs, the
// constraints the engine derives from the content models — cardinality
// constraints (loop merging), order constraints (streaming vs buffering)
// and co-occurrence conflicts (unsatisfiable conditionals) — and then
// shows the full compilation pipeline (normal form, rewrites, FluX query,
// buffer description forest) for the paper's running query under both
// DTDs.
//
// Run with: go run ./examples/schemareason
package main

import (
	"fmt"
	"log"

	"fluxquery"
)

// The paper's §2 DTD (weak) and Figure 1 DTD (strong).
const weakDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title|author)*>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
`

const strongDTD = `
<!ELEMENT bib (book)*>
<!ELEMENT book (title,(author+|editor+),publisher,price)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
<!ELEMENT editor (#PCDATA)>
<!ELEMENT publisher (#PCDATA)>
<!ELEMENT price (#PCDATA)>
`

const query = `<results>{
  for $b in $ROOT/bib/book return
    <result>{ $b/title }{ $b/author }</result>
}</results>`

// goedel is the paper's unsatisfiable conditional: under Figure 1, no
// book has both author and editor children.
const goedel = `<results>{
  for $b in $ROOT/bib/book return
    { if ($b/author = "Goedel" and $b/editor = "Goedel") then <hit/> else () }
}</results>`

func main() {
	for _, c := range []struct{ name, dtdSrc string }{
		{"weak DTD (paper §2)", weakDTD},
		{"strong DTD (paper Figure 1)", strongDTD},
	} {
		d, err := fluxquery.ParseDTD(c.dtdSrc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("==== %s ====\n", c.name)
		fmt.Println(d.ConstraintSummary("book"))

		q, err := fluxquery.ParseQuery(query)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := fluxquery.Compile(q, d, fluxquery.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("-- compilation pipeline for XMP Q3 --")
		fmt.Println(plan.Explain())
		fmt.Println()
	}

	// The optimizer proves the Goedel conditional unsatisfiable under the
	// strong DTD and removes it.
	d, _ := fluxquery.ParseDTD(strongDTD)
	q, err := fluxquery.ParseQuery(goedel)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := fluxquery.Compile(q, d, fluxquery.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("==== unsatisfiable conditional (paper §3.1) ====")
	fmt.Println(plan.Explain())
}
