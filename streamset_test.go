package fluxquery

// Differential and performance coverage for the shared-stream multi-query
// engine: StreamSet output must be byte-identical to independent
// Plan.Execute runs over the whole workload corpus, a run must cost
// exactly one tokenize+validate pass no matter how many plans ride the
// stream, and the shared pass must beat sequential execution on the
// aggregate N-queries-one-document workload.

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"fluxquery/internal/workload"
	"fluxquery/internal/xmltok"
)

// corpusGroups buckets the workload catalogue by schema: every group is a
// set of queries that can ride one stream (bib weak/strong, auction,
// store).
func corpusGroups() map[string][]workload.Case {
	groups := map[string][]workload.Case{}
	for _, c := range workload.Cases {
		groups[c.DTD] = append(groups[c.DTD], c)
	}
	return groups
}

func genCorpusDoc(t testing.TB, c *workload.Case, size int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Gen(&buf, size, 7); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamSetDifferential registers every query of a schema group on
// one StreamSet and checks each output and stats against its own
// independent Execute run.
func TestStreamSetDifferential(t *testing.T) {
	for dtdSrc, cases := range corpusGroups() {
		d, err := ParseDTD(dtdSrc)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(cases[0].Name+"-group", func(t *testing.T) {
			doc := genCorpusDoc(t, &cases[0], 100_000)
			set := NewStreamSet(d)
			outs := make([]*bytes.Buffer, len(cases))
			regs := make([]*StreamQuery, len(cases))
			plans := make([]*Plan, len(cases))
			for i, c := range cases {
				plans[i] = MustCompile(c.Query, dtdSrc, Options{})
				outs[i] = &bytes.Buffer{}
				reg, err := set.Register(plans[i], outs[i])
				if err != nil {
					t.Fatalf("%s: %v", c.Name, err)
				}
				regs[i] = reg
			}
			if err := set.Run(bytes.NewReader(doc)); err != nil {
				t.Fatalf("shared run: %v", err)
			}
			for i, c := range cases {
				var want bytes.Buffer
				wantSt, err := plans[i].Execute(bytes.NewReader(doc), &want)
				if err != nil {
					t.Fatalf("%s: single run: %v", c.Name, err)
				}
				if !bytes.Equal(outs[i].Bytes(), want.Bytes()) {
					t.Errorf("%s: shared-stream output differs from Execute (%d vs %d bytes)",
						c.Name, outs[i].Len(), want.Len())
				}
				st, err := regs[i].Stats()
				if err != nil {
					t.Errorf("%s: stats error: %v", c.Name, err)
				}
				// Events may legitimately diverge: the shared pass projects
				// with the union of every registered plan's path-set, so a
				// plan can see (and count) events only a neighbour needs.
				// Everything derived from the events must match exactly.
				if st.Events < wantSt.Events || st.PeakBufferBytes != wantSt.PeakBufferBytes ||
					st.OutputBytes != wantSt.OutputBytes || st.HandlerFirings != wantSt.HandlerFirings {
					t.Errorf("%s: shared stats diverge: %+v vs %+v", c.Name, st, wantSt)
				}
			}
		})
	}
}

// auctionPlans compiles 8 plans from the streaming XMark auction queries:
// the acceptance workload of 8 plans on one auction stream. The join
// workload (xmark-q8-join) is covered by the differential suite but kept
// out of the throughput workload: its nested-loop join is pure evaluator
// CPU, which a shared scan cannot reduce — the dispatcher's win is the
// N-1 parses it eliminates.
func auctionPlans(t testing.TB) (*DTD, []*Plan, []byte) {
	t.Helper()
	names := []string{"xmark-q1", "xmark-q13", "xmark-q2-bidders"}
	base := workload.ByName(names[0])
	d, err := ParseDTD(base.DTD)
	if err != nil {
		t.Fatal(err)
	}
	var plans []*Plan
	for i := 0; i < 8; i++ {
		c := workload.ByName(names[i%len(names)])
		plans = append(plans, MustCompile(c.Query, c.DTD, Options{}))
	}
	return d, plans, genCorpusDoc(t, base, 256_000)
}

// TestStreamSetSinglePass asserts — via scanner instrumentation — that a
// StreamSet run with 8 registered queries performs exactly one
// tokenize+validate pass, where 8 independent Execute runs perform 8, and
// that the outputs are byte-identical.
func TestStreamSetSinglePass(t *testing.T) {
	d, plans, doc := auctionPlans(t)

	set := NewStreamSet(d)
	outs := make([]*bytes.Buffer, len(plans))
	for i, p := range plans {
		outs[i] = &bytes.Buffer{}
		if _, err := set.Register(p, outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := xmltok.ScanPasses()
	if err := set.Run(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	if passes := xmltok.ScanPasses() - before; passes != 1 {
		t.Errorf("StreamSet run with %d queries made %d scan passes, want exactly 1", len(plans), passes)
	}

	before = xmltok.ScanPasses()
	for i, p := range plans {
		var want bytes.Buffer
		if _, err := p.Execute(bytes.NewReader(doc), &want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(outs[i].Bytes(), want.Bytes()) {
			t.Errorf("plan %d: shared output differs from independent run", i)
		}
	}
	if passes := xmltok.ScanPasses() - before; passes != uint64(len(plans)) {
		t.Errorf("%d independent runs made %d scan passes, want %d", len(plans), passes, len(plans))
	}
}

// TestStreamSetConcurrentRegistration exercises register/unregister from
// many goroutines while documents stream through (run under -race in CI).
func TestStreamSetConcurrentRegistration(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}
	doc := genCorpusDoc(t, c, 60_000)
	p := MustCompile(c.Query, c.DTD, Options{})

	set := NewStreamSet(d)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg, err := set.Register(p, io.Discard)
				if err != nil {
					t.Error(err)
					return
				}
				time.Sleep(time.Microsecond)
				reg.Unregister()
			}
		}()
	}
	// Pinned queries whose results must stay correct under the churn.
	var pinnedOut bytes.Buffer
	pinned, err := set.Register(p, &pinnedOut)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := p.Execute(bytes.NewReader(doc), &want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pinnedOut.Reset()
		if err := set.Run(bytes.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		if st, err := pinned.Stats(); err != nil {
			t.Fatalf("run %d: pinned query failed: %v (stats %+v)", i, err, st)
		}
		if !bytes.Equal(pinnedOut.Bytes(), want.Bytes()) {
			t.Fatalf("run %d: pinned query output corrupted under churn", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestStreamSetErrorIsolation: one plan with a failing writer must not
// disturb its neighbours or the stream (public-API view of the mqe
// isolation tests).
func TestStreamSetErrorIsolation(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}
	doc := genCorpusDoc(t, c, 120_000)
	p := MustCompile(c.Query, c.DTD, Options{})

	set := NewStreamSet(d)
	bad, err := set.Register(p, &failingWriter{n: 32})
	if err != nil {
		t.Fatal(err)
	}
	var goodOut bytes.Buffer
	good, err := set.Register(p, &goodOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Run(bytes.NewReader(doc)); err != nil {
		t.Fatalf("stream disturbed by failing plan: %v", err)
	}
	if _, err := bad.Stats(); err == nil {
		t.Error("failing plan's writer error not reported through its StreamQuery")
	}
	var want bytes.Buffer
	if _, err := p.Execute(bytes.NewReader(doc), &want); err != nil {
		t.Fatal(err)
	}
	if _, err := good.Stats(); err != nil {
		t.Errorf("healthy plan reported %v", err)
	}
	if !bytes.Equal(goodOut.Bytes(), want.Bytes()) {
		t.Error("healthy plan output corrupted")
	}
}

// TestStreamSetRejectsMismatches: baseline engines and foreign DTDs do
// not ride shared streams.
func TestStreamSetRejectsMismatches(t *testing.T) {
	c := workload.ByName("xmp-q3-weak")
	d, err := ParseDTD(c.DTD)
	if err != nil {
		t.Fatal(err)
	}
	set := NewStreamSet(d)
	if _, err := set.Register(MustCompile(c.Query, c.DTD, Options{Engine: EngineNaive}), io.Discard); err == nil {
		t.Error("naive-engine plan registered on a stream set")
	}
	other := workload.ByName("xmark-q1")
	if _, err := set.Register(MustCompile(other.Query, other.DTD, Options{}), io.Discard); err == nil {
		t.Error("plan compiled under the auction DTD registered on a bib stream")
	}
}

// sharedVsSequential times one StreamSet pass of all plans against
// sequential independent Execute runs over the same document.
func sharedVsSequential(t testing.TB, d *DTD, plans []*Plan, doc []byte) (shared, sequential time.Duration) {
	set := NewStreamSet(d)
	for _, p := range plans {
		if _, err := set.Register(p, io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := set.Run(bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	shared = time.Since(start)

	start = time.Now()
	for _, p := range plans {
		if _, err := p.Execute(bytes.NewReader(doc), io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	sequential = time.Since(start)
	return shared, sequential
}

// TestStreamSetThroughputAdvantage: the acceptance bar is >=2x aggregate
// throughput for 8 queries on one stream (see the benchmarks for the
// measured factor); the test asserts a conservative floor so CI noise
// cannot flake it.
func TestStreamSetThroughputAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	d, plans, doc := auctionPlans(t)
	bestShared, bestSeq := time.Duration(1<<62), time.Duration(1<<62)
	for i := 0; i < 3; i++ {
		sh, seq := sharedVsSequential(t, d, plans, doc)
		if sh < bestShared {
			bestShared = sh
		}
		if seq < bestSeq {
			bestSeq = seq
		}
	}
	speedup := float64(bestSeq) / float64(bestShared)
	t.Logf("8 queries over %s auction doc: shared pass %v, sequential %v (%.2fx)",
		kbs(len(doc)), bestShared, bestSeq, speedup)
	if speedup < 1.3 {
		t.Errorf("shared pass speedup %.2fx below the 1.3x floor (shared %v, sequential %v)",
			speedup, bestShared, bestSeq)
	}
}

func kbs(n int) string { return fmt.Sprintf("%.0fKB", float64(n)/1024) }

// BenchmarkStreamSet8Shared measures the aggregate N-queries-one-stream
// workload on the shared dispatcher: 8 compiled auction queries, one
// tokenize+validate pass per iteration. Bytes/op counts the aggregate
// work (8 query-evaluations of the document) so MB/s is directly
// comparable with BenchmarkStreamSet8Sequential.
func BenchmarkStreamSet8Shared(b *testing.B) {
	d, plans, doc := auctionPlans(b)
	set := NewStreamSet(d)
	for _, p := range plans {
		if _, err := set.Register(p, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(doc) * len(plans)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := set.Run(bytes.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamSet8Sequential is the baseline the dispatcher replaces:
// the same 8 plans executed one after another, re-scanning the document
// each time.
func BenchmarkStreamSet8Sequential(b *testing.B) {
	_, plans, doc := auctionPlans(b)
	b.SetBytes(int64(len(doc) * len(plans)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			if _, err := p.Execute(bytes.NewReader(doc), io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkStreamSetScaling reports how the shared pass scales with the
// number of riding plans (1, 4, 16 copies of XMark Q1).
func BenchmarkStreamSetScaling(b *testing.B) {
	c := workload.ByName("xmark-q1")
	d, err := ParseDTD(c.DTD)
	if err != nil {
		b.Fatal(err)
	}
	doc := genCorpusDoc(b, c, 256_000)
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("plans=%d", n), func(b *testing.B) {
			set := NewStreamSet(d)
			for i := 0; i < n; i++ {
				if _, err := set.Register(MustCompile(c.Query, c.DTD, Options{}), io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(doc) * n))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := set.Run(bytes.NewReader(doc)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
