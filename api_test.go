package fluxquery

import (
	"strings"
	"testing"

	"fluxquery/internal/xmlgen"
)

const paperQuery = `<results>{ for $b in $ROOT/bib/book return <result>{ $b/title }{ $b/author }</result> }</results>`

const paperDoc = `<bib><book year="1994"><title>T1</title><author>A1</author><author>A2</author></book><book year="2000"><author>B1</author><title>T2</title></book></bib>`

func TestCompileAndExecute(t *testing.T) {
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	out, st, err := p.ExecuteString(paperDoc)
	if err != nil {
		t.Fatal(err)
	}
	want := `<results><result><title>T1</title><author>A1</author><author>A2</author></result><result><title>T2</title><author>B1</author></result></results>`
	if out != want {
		t.Errorf("out = %s", out)
	}
	if st.Engine != EngineFlux {
		t.Errorf("engine = %v", st.Engine)
	}
	if st.PeakBufferBytes <= 0 {
		t.Error("weak DTD must buffer authors")
	}
	if st.OutputBytes != int64(len(want)) {
		t.Errorf("output bytes = %d, want %d", st.OutputBytes, len(want))
	}
	if st.Duration <= 0 {
		t.Error("duration not measured")
	}
}

func TestEnginesProduceSameOutput(t *testing.T) {
	for _, engine := range []Engine{EngineFlux, EngineProjection, EngineNaive} {
		p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{Engine: engine})
		out, _, err := p.ExecuteString(paperDoc)
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		ref, _, _ := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{}).ExecuteString(paperDoc)
		if out != ref {
			t.Errorf("%v output differs:\n%s\nvs\n%s", engine, out, ref)
		}
	}
}

func TestExplainMentionsAllStages(t *testing.T) {
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	ex := p.Explain()
	for _, want := range []string{"normal form", "flux query", "process-stream", "buffer description forest", "on-first past"} {
		if !strings.Contains(ex, want) {
			t.Errorf("explain missing %q:\n%s", want, ex)
		}
	}
}

func TestFluxString(t *testing.T) {
	p := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{})
	if !strings.Contains(p.FluxString(), "process-stream") {
		t.Error("FluxString missing process-stream")
	}
	pn := MustCompile(paperQuery, xmlgen.WeakBibDTD, Options{Engine: EngineNaive})
	if pn.FluxString() != "" {
		t.Error("naive plans have no FluX form")
	}
}

func TestEngineParsing(t *testing.T) {
	for _, name := range []string{"flux", "projection", "naive"} {
		e, err := ParseEngine(name)
		if err != nil || e.String() != name {
			t.Errorf("round trip %q failed: %v %v", name, e, err)
		}
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Error("bogus engine accepted")
	}
}

func TestDTDAccessors(t *testing.T) {
	d, err := ParseDTD(xmlgen.StrongBibDTD)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != "bib" {
		t.Errorf("root = %s", d.Root())
	}
	if !strings.Contains(d.ConstraintSummary("book"), "order: all title before all author") {
		t.Error("constraint summary missing order constraint")
	}
	if err := d.Validate(strings.NewReader(`<bib></bib>`)); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
	if err := d.Validate(strings.NewReader(`<bib><x/></bib>`)); err == nil {
		t.Error("invalid doc accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := ParseQuery("not a query"); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := ParseDTD("not a dtd"); err == nil {
		t.Error("bad dtd accepted")
	}
	// Unknown variable: scheduling fails.
	q, err := ParseQuery(`<r>{ for $b in $nowhere/bib/book return { $b } }</r>`)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := ParseDTD(xmlgen.WeakBibDTD)
	if _, err := Compile(q, d, Options{}); err == nil {
		t.Error("query with unbound root accepted")
	}
}

func TestInvalidInputReportedByFlux(t *testing.T) {
	p := MustCompile(paperQuery, xmlgen.StrongBibDTD, Options{})
	_, _, err := p.ExecuteString(`<bib><book year="1"><author>A</author></book></bib>`)
	if err == nil {
		t.Error("invalid document accepted")
	}
}

func TestOptimizerAblationOptions(t *testing.T) {
	loopQuery := `<results>{ for $b in $ROOT/bib/book return <r>{ for $x in $b/publisher return <p1/> }{ for $x in $b/publisher return <p2/> }</r> }</results>`
	on := MustCompile(loopQuery, xmlgen.StrongBibDTD, Options{})
	off := MustCompile(loopQuery, xmlgen.StrongBibDTD, Options{NoLoopMerging: true})
	if strings.Count(on.optimized.String(), "in $b/publisher") != 1 {
		t.Errorf("loop merging did not fire:\n%s", on.optimized)
	}
	if strings.Count(off.optimized.String(), "in $b/publisher") != 2 {
		t.Errorf("NoLoopMerging ignored:\n%s", off.optimized)
	}
	disabled := MustCompile(loopQuery, xmlgen.StrongBibDTD, Options{DisableOptimizer: true})
	if len(disabled.optTrace) != 0 {
		t.Error("DisableOptimizer still traced rewrites")
	}
}
