package fluxquery

// Differential tests of the pipelined pass: with Options.Parallel (or
// StreamSet.SetParallel) the tokenizer, validator and dispatcher run on
// separate goroutines connected by bounded batch rings, and the plan set
// is sharded across feed workers — but the output must stay byte-
// identical to the sequential pass on every corpus query, and error
// semantics (validity errors, tag imbalance, projection trade-offs)
// must be preserved event-for-event. These are the tentpole's primary
// acceptance tests; run them with -race.

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"fluxquery/internal/mqe"
	"fluxquery/internal/workload"
)

// TestParallelDifferentialCorpus: for every workload case and projection
// mode, pipelined execution is byte-identical to sequential execution,
// with identical buffer accounting and scan counters.
func TestParallelDifferentialCorpus(t *testing.T) {
	for _, c := range workload.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var doc bytes.Buffer
			if err := c.Gen(&doc, 20_000, 1); err != nil {
				t.Fatal(err)
			}
			for _, m := range projModes {
				seq := MustCompile(c.Query, c.DTD, Options{Projection: m})
				par := MustCompile(c.Query, c.DTD, Options{Projection: m, Parallel: 4})
				want, wantSt, err := seq.ExecuteString(doc.String())
				if err != nil {
					t.Fatalf("proj=%v sequential: %v", m, err)
				}
				got, gotSt, err := par.ExecuteString(doc.String())
				if err != nil {
					t.Fatalf("proj=%v parallel: %v", m, err)
				}
				if got != want {
					t.Fatalf("proj=%v: parallel output differs from sequential\npar: %.200s\nseq: %.200s",
						m, got, want)
				}
				if gotSt.PeakBufferBytes != wantSt.PeakBufferBytes ||
					gotSt.HandlerFirings != wantSt.HandlerFirings ||
					gotSt.Events != wantSt.Events {
					t.Errorf("proj=%v: accounting diverged: %+v vs %+v", m, gotSt, wantSt)
				}
				if gotSt.ScanEventsDelivered != wantSt.ScanEventsDelivered ||
					gotSt.ScanEventsSkipped != wantSt.ScanEventsSkipped ||
					gotSt.ScanSubtreesSkipped != wantSt.ScanSubtreesSkipped ||
					gotSt.ScanBytesSkipped != wantSt.ScanBytesSkipped {
					t.Errorf("proj=%v: scan counters diverged: %+v vs %+v", m, gotSt, wantSt)
				}
			}
		})
	}
}

// TestParallelStreamSetDifferential: all 8 XMark streaming queries ride
// one parallel shared pass; every plan's output must be byte-identical
// to the sequential shared pass, and the pass must report pipeline
// metrics.
func TestParallelStreamSetDifferential(t *testing.T) {
	var xmark []*workload.Case
	for i := range workload.Cases {
		if strings.HasPrefix(workload.Cases[i].Name, "xmark-") {
			xmark = append(xmark, &workload.Cases[i])
		}
	}
	if len(xmark) != 8 {
		t.Fatalf("expected 8 xmark queries, got %d", len(xmark))
	}
	var doc bytes.Buffer
	if err := xmark[0].Gen(&doc, 150_000, 11); err != nil {
		t.Fatal(err)
	}
	d, err := ParseDTD(xmark[0].DTD)
	if err != nil {
		t.Fatal(err)
	}

	run := func(parallel int) []string {
		set := NewStreamSet(d)
		set.SetParallel(parallel)
		outs := make([]*bytes.Buffer, len(xmark))
		for i, c := range xmark {
			outs[i] = &bytes.Buffer{}
			if _, err := set.Register(MustCompile(c.Query, c.DTD, Options{}), outs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := set.Run(bytes.NewReader(doc.Bytes())); err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		res := make([]string, len(outs))
		for i, o := range outs {
			res[i] = o.String()
		}
		if parallel >= 2 {
			ps := set.LastPass()
			if ps.Parallel < 2 || ps.Batches == 0 {
				t.Errorf("parallel=%d: missing pipeline metrics: %+v", parallel, ps)
			}
		}
		return res
	}

	for _, m := range projModes {
		want := run(1)
		for _, n := range []int{2, 4, 8} {
			got := run(n)
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("proj=%v parallel=%d: %s diverges from sequential shared pass",
						m, n, xmark[i].Name)
				}
			}
		}
	}
}

// TestParallelErrorSemantics mirrors the projection error-trade-off
// tests under pipelined execution: a validity error buried inside a
// pruned subtree is caught by validate/off and traded away by fast,
// while tag imbalance is caught by every mode.
func TestParallelErrorSemantics(t *testing.T) {
	const dtdSrc = `<!ELEMENT bib (book)*>
<!ELEMENT book (title,extra)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT extra (note)*>
<!ELEMENT note (#PCDATA)>`
	const query = `<t>{ for $b in $ROOT/bib/book return { $b/title } }</t>`
	const invalid = `<bib><book><title>T</title><extra><wrong/></extra></book></bib>`
	const unbalanced = `<bib><book><title>T</title><extra><note></extra></book></bib>`

	for _, m := range projModes {
		p := MustCompile(query, dtdSrc, Options{Projection: m, Parallel: 4})
		_, _, err := p.ExecuteString(invalid)
		if m == ProjectionFast {
			if err != nil {
				t.Errorf("fast: expected the invalid-but-balanced interior to be traded away, got %v", err)
			}
		} else if err == nil {
			t.Errorf("proj=%v: undeclared element inside skipped region not reported", m)
		}
		if _, _, err := p.ExecuteString(unbalanced); err == nil {
			t.Errorf("proj=%v: tag imbalance inside skipped region not reported", m)
		}
	}

	// Error strings must match the sequential pass exactly (same line,
	// same message): run a buried validity error through both.
	seq := MustCompile(query, dtdSrc, Options{Projection: ProjectionValidate})
	par := MustCompile(query, dtdSrc, Options{Projection: ProjectionValidate, Parallel: 4})
	_, _, serr := seq.ExecuteString(invalid)
	_, _, perr := par.ExecuteString(invalid)
	if serr == nil || perr == nil || serr.Error() != perr.Error() {
		t.Errorf("error mismatch:\nsequential: %v\nparallel:   %v", serr, perr)
	}
}

// TestParallelRegisterChurn: Register/Unregister run concurrently with
// parallel shared passes; unregistered plans detach with
// ErrUnregistered, the stream and the other plans are undisturbed, and
// (under -race) no counter or batch is shared unsynchronized.
func TestParallelRegisterChurn(t *testing.T) {
	stable := workload.ByName("xmark-q1")
	churnA := workload.ByName("xmark-q13")
	churnB := workload.ByName("xmark-q2-bidders")
	var doc bytes.Buffer
	if err := stable.Gen(&doc, 60_000, 3); err != nil {
		t.Fatal(err)
	}
	d, err := ParseDTD(stable.DTD)
	if err != nil {
		t.Fatal(err)
	}
	solo := MustCompile(stable.Query, stable.DTD, Options{})
	want, _, err := solo.ExecuteString(doc.String())
	if err != nil {
		t.Fatal(err)
	}

	set := NewStreamSet(d)
	set.SetParallel(4)
	var out bytes.Buffer
	if _, err := set.Register(MustCompile(stable.Query, stable.DTD, Options{}), &out); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pa := MustCompile(churnA.Query, churnA.DTD, Options{})
		pb := MustCompile(churnB.Query, churnB.DTD, Options{})
		var sink bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			qa, err := set.Register(pa, &sink)
			if err != nil {
				t.Error(err)
				return
			}
			qb, err := set.Register(pb, &sink)
			if err != nil {
				t.Error(err)
				return
			}
			qa.Unregister()
			qb.Unregister()
		}
	}()

	for pass := 0; pass < 20; pass++ {
		out.Reset()
		if err := set.Run(bytes.NewReader(doc.Bytes())); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if out.String() != want {
			t.Fatalf("pass %d: stable plan's output diverged under churn", pass)
		}
	}
	close(stop)
	wg.Wait()
}

// TestParallelUnregisterMidStream: a plan unregistered while a parallel
// pass is in flight detaches at a batch boundary and reports
// ErrUnregistered; the remaining plan completes byte-identically.
func TestParallelUnregisterMidStream(t *testing.T) {
	stable := workload.ByName("xmark-q1")
	victim := workload.ByName("xmark-q13")
	var doc bytes.Buffer
	if err := stable.Gen(&doc, 120_000, 5); err != nil {
		t.Fatal(err)
	}
	d, err := ParseDTD(stable.DTD)
	if err != nil {
		t.Fatal(err)
	}
	solo := MustCompile(stable.Query, stable.DTD, Options{})
	want, _, err := solo.ExecuteString(doc.String())
	if err != nil {
		t.Fatal(err)
	}

	set := NewStreamSet(d)
	set.SetParallel(4)
	var out, sink bytes.Buffer
	if _, err := set.Register(MustCompile(stable.Query, stable.DTD, Options{}), &out); err != nil {
		t.Fatal(err)
	}
	vq, err := set.Register(MustCompile(victim.Query, victim.DTD, Options{}), &sink)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		vq.Unregister()
	}()
	if err := set.Run(bytes.NewReader(doc.Bytes())); err != nil {
		t.Fatal(err)
	}
	<-done
	if out.String() != want {
		t.Fatal("remaining plan's output diverged after mid-stream unregister")
	}
	if _, verr := vq.Stats(); verr != nil &&
		!errors.Is(verr, mqe.ErrUnregistered) && !errors.Is(verr, mqe.ErrNotRun) {
		// The unregister may also land before the pass starts (clean
		// detach, never run) — only a foreign error is a failure.
		t.Fatalf("unexpected victim result: %v", verr)
	}
}
